//! Modulo reservation table: functional-unit slots and register-bus slots.
//!
//! Occupancy is stored **word-parallel**: each (cluster, FU-kind) row and
//! each bus row is a run of `u64` words over the II's modulo slots
//! (`ceil(II / 64)` words per row), with a set bit meaning "slot at
//! capacity". A feasibility probe is one AND; a candidate-cycle scan is a
//! trailing-zeros (or leading-zeros, for descending windows) walk over the
//! row's free-mask, so fully-occupied stretches cost one word inspection
//! instead of one probe per slot. Functional units additionally keep a
//! `u16` counter per slot so capacities above one stay supported — the
//! counters feed the masks (`bit set ⇔ count == capacity`) and the hot
//! probes read only the masks.
//!
//! The legacy one-scalar-per-probe table is retained as [`ScalarMrt`], a
//! test-only reference implementation behind the shared
//! [`ReservationTable`] trait; the engine is generic over that trait so
//! equivalence tests can drive the exact same placement code over both
//! representations and assert bit-identical schedules.

use vliw_ir::FuKind;
use vliw_machine::MachineConfig;

/// Which reservation-table implementation the engine drives.
///
/// [`MrtImpl::Masked`] is the production word-parallel table;
/// [`MrtImpl::ScalarReference`] is the legacy scalar-probe table retained
/// so the equivalence suite can prove the masked table produces
/// bit-identical schedules and equal work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MrtImpl {
    /// Word-parallel `u64` occupancy rows (the default).
    #[default]
    Masked,
    /// The pre-refactor scalar-probe table ([`ScalarMrt`]), kept as the
    /// reference implementation for equivalence testing.
    ScalarReference,
}

/// The reservation-table contract the scheduling engine is generic over.
///
/// Both implementations ([`Mrt`], [`ScalarMrt`]) expose identical
/// transaction, savepoint, reservation and candidate-walk semantics; the
/// engine's placement loop never branches on the implementation, which is
/// what makes the scalar table a meaningful equivalence reference.
pub trait ReservationTable: Clone {
    /// An empty table for the given II and machine.
    fn new(ii: u32, machine: &MachineConfig) -> Self;
    /// Re-initializes for a (possibly different) II, reusing allocations.
    fn reset(&mut self, ii: u32, machine: &MachineConfig);
    /// The II this table was built for.
    fn ii(&self) -> u32;
    /// Opens a transaction (see [`Mrt::begin`]).
    fn begin(&mut self);
    /// Commits the open transaction (see [`Mrt::commit`]).
    fn commit(&mut self);
    /// Rolls back the open transaction (see [`Mrt::rollback`]).
    fn rollback(&mut self);
    /// Whether a transaction is open.
    fn in_transaction(&self) -> bool;
    /// Marks the current journal position (see [`Mrt::savepoint`]).
    fn savepoint(&self) -> MrtSavepoint;
    /// Unwinds to a savepoint (see [`Mrt::rollback_to`]).
    fn rollback_to(&mut self, sp: MrtSavepoint);
    /// Whether a `kind` unit is free in `cluster` at `cycle`.
    fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool;
    /// Reserves a `kind` unit in `cluster` at `cycle`.
    fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64);
    /// The first cycle with a free `kind` unit, walking from `from`
    /// towards `limit` inclusive (downwards when `descending`). The
    /// caller's window never exceeds one II, so each modulo slot is
    /// inspected at most once.
    fn next_free_fu_cycle(
        &self,
        cluster: usize,
        kind: FuKind,
        from: i64,
        limit: i64,
        descending: bool,
    ) -> Option<i64>;
    /// Finds a register bus free for a whole transfer starting at `cycle`.
    fn bus_find(&self, cycle: i64) -> Option<usize>;
    /// Whether bus `bus` is free for a transfer starting at `cycle`.
    fn bus_free(&self, bus: usize, cycle: i64) -> bool;
    /// Reserves bus `bus` for a transfer starting at `cycle`.
    fn bus_reserve(&mut self, bus: usize, cycle: i64);
    /// Number of clusters this table covers.
    fn n_clusters(&self) -> usize;
}

/// Tracks resource usage of a partial modulo schedule at one II.
///
/// Functional units are per-(cluster, kind, modulo-slot) counters shadowed
/// by per-(cluster, kind) `u64` full-masks; register buses are per-bus
/// `u64` occupancy masks, and a transfer occupies
/// [`transfer_cycles`](vliw_machine::BusConfig::transfer_cycles) consecutive
/// slots on the same bus (the buses run at half the core frequency).
///
/// # Transactions
///
/// The scheduler probes thousands of candidate `(cluster, cycle)` slots per
/// placement, most of which fail on bus availability. Instead of cloning
/// the whole table per probe, open a transaction with [`Mrt::begin`]: every
/// [`Mrt::fu_reserve`] / [`Mrt::bus_reserve`] then appends an undo entry to
/// an internal journal, [`Mrt::rollback`] unwinds exactly those
/// reservations (O(reservations made), not O(table)), and [`Mrt::commit`]
/// makes them permanent. Transactions do not nest — one probe at a time —
/// and `commit`/`rollback` outside a transaction are no-ops, so a commit is
/// idempotent.
///
/// Bus reservations journal **word-level deltas**: one entry per `u64` word
/// a transfer touched, carrying the exact bits it set, so a wrapped
/// multi-slot transfer unwinds in at most two mask operations.
///
/// Backtracking searchers (the exact branch-and-bound backend) need more
/// than one probe of undo depth: [`Mrt::savepoint`] marks a position in
/// the open transaction's journal and [`Mrt::rollback_to`] unwinds back to
/// it while keeping the transaction open, so the journal doubles as the
/// search's undo stack — one savepoint per decision level.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    /// Words per occupancy row: `ceil(ii / 64)`.
    words: usize,
    n_clusters: usize,
    fu_cap: [usize; 3],
    /// Per-slot reservation counts, `[cluster][kind][slot]` — the source
    /// of truth for capacities above one. Probes never read this.
    fu_cnt: Vec<u16>,
    /// Per-(cluster, kind) full-masks, `[cluster][kind][word]`: bit set ⇔
    /// the slot is at capacity.
    fu_full: Vec<u64>,
    /// Per-bus occupancy masks, `[bus][word]`: bit set ⇔ slot occupied.
    bus: Vec<u64>,
    n_buses: usize,
    transfer: u32,
    // undo log of the open transaction (empty when none is open)
    journal: Vec<Undo>,
    in_txn: bool,
}

/// A position in an open transaction's journal, taken with
/// [`Mrt::savepoint`] and released (LIFO) with [`Mrt::rollback_to`].
#[derive(Debug, Clone, Copy)]
pub struct MrtSavepoint(usize);

/// One journal entry: the word-level delta a reservation applied.
#[derive(Debug, Clone, Copy)]
enum Undo {
    /// `fu_cnt[idx] += 1` happened (flat `[cluster][kind][slot]` index);
    /// undo decrements and clears the slot's full bit — after the
    /// decrement the count is strictly below capacity, so the clear is
    /// unconditional.
    Fu(u32),
    /// `bus[widx] |= bits` happened with every bit in `bits` previously
    /// clear; undo is `bus[widx] &= !bits`.
    BusWord {
        /// Flat word index into the bus mask array.
        widx: u32,
        /// The exact bits the reservation set in that word.
        bits: u64,
    },
    /// Scalar-table bus entry: `bus[idx] = true` happened (one entry per
    /// occupied slot); undo clears. Only [`ScalarMrt`] emits these.
    BusSlot(u32),
}

fn kind_index(kind: FuKind) -> usize {
    match kind {
        FuKind::Int => 0,
        FuKind::Fp => 1,
        FuKind::Mem => 2,
    }
}

fn words_for(ii: u32) -> usize {
    (ii as usize).div_ceil(64)
}

impl Mrt {
    /// An empty table for the given II and machine.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, machine: &MachineConfig) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        let words = words_for(ii);
        Mrt {
            ii,
            words,
            n_clusters: n,
            fu_cap: [
                machine.clusters.int_units,
                machine.clusters.fp_units,
                machine.clusters.mem_units,
            ],
            fu_cnt: vec![0; n * 3 * ii as usize],
            fu_full: vec![0; n * 3 * words],
            bus: vec![0; machine.buses.reg_buses * words],
            n_buses: machine.buses.reg_buses,
            transfer: machine.buses.transfer_cycles,
            journal: Vec::new(),
            in_txn: false,
        }
    }

    /// Re-initializes the table for a (possibly different) II and machine,
    /// reusing the existing allocations — the scheduler resets one table
    /// per placement attempt instead of building a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32, machine: &MachineConfig) {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        let words = words_for(ii);
        self.ii = ii;
        self.words = words;
        self.n_clusters = n;
        self.fu_cap = [
            machine.clusters.int_units,
            machine.clusters.fp_units,
            machine.clusters.mem_units,
        ];
        self.fu_cnt.clear();
        self.fu_cnt.resize(n * 3 * ii as usize, 0);
        self.fu_full.clear();
        self.fu_full.resize(n * 3 * words, 0);
        self.bus.clear();
        self.bus.resize(machine.buses.reg_buses * words, 0);
        self.n_buses = machine.buses.reg_buses;
        self.transfer = machine.buses.transfer_cycles;
        self.journal.clear();
        self.in_txn = false;
    }

    /// Opens a transaction: subsequent reservations are journaled until
    /// [`Mrt::commit`] or [`Mrt::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open (transactions do not nest).
    pub fn begin(&mut self) {
        assert!(!self.in_txn, "MRT transactions do not nest");
        debug_assert!(self.journal.is_empty());
        self.in_txn = true;
    }

    /// Makes the open transaction's reservations permanent. A no-op when
    /// no transaction is open, so committing twice is harmless.
    pub fn commit(&mut self) {
        self.journal.clear();
        self.in_txn = false;
    }

    /// Unwinds every reservation made since [`Mrt::begin`], restoring the
    /// exact functional-unit counters and bus masks. A no-op when no
    /// transaction is open.
    pub fn rollback(&mut self) {
        while let Some(entry) = self.journal.pop() {
            self.undo(entry);
        }
        self.in_txn = false;
    }

    fn undo(&mut self, entry: Undo) {
        match entry {
            Undo::Fu(idx) => {
                let idx = idx as usize;
                self.fu_cnt[idx] -= 1;
                // count just dropped below capacity: the slot is free again
                let (row, slot) = (idx / self.ii as usize, idx % self.ii as usize);
                self.fu_full[row * self.words + slot / 64] &= !(1u64 << (slot % 64));
            }
            Undo::BusWord { widx, bits } => self.bus[widx as usize] &= !bits,
            Undo::BusSlot(_) => unreachable!("scalar journal entry in masked table"),
        }
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Marks the current position in the open transaction's journal.
    /// [`Mrt::rollback_to`] unwinds back to the mark while leaving the
    /// transaction (and every reservation made before the mark) intact —
    /// the nested undo stack a backtracking searcher layers on top of the
    /// flat begin/commit/rollback probe protocol.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn savepoint(&self) -> MrtSavepoint {
        assert!(self.in_txn, "savepoint requires an open transaction");
        MrtSavepoint(self.journal.len())
    }

    /// Unwinds every reservation made since `sp`, restoring the exact
    /// functional-unit counters and bus masks at the mark. The transaction
    /// stays open; earlier savepoints of the same transaction remain
    /// valid.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open, or if the journal has already
    /// been unwound past `sp` (a savepoint must be released in LIFO
    /// order).
    pub fn rollback_to(&mut self, sp: MrtSavepoint) {
        assert!(self.in_txn, "rollback_to requires an open transaction");
        assert!(
            sp.0 <= self.journal.len(),
            "savepoint already unwound (LIFO order violated)"
        );
        while self.journal.len() > sp.0 {
            let entry = self.journal.pop().expect("journal entry");
            self.undo(entry);
        }
    }

    /// The II this table was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii as i64) as usize
    }

    fn fu_row(&self, cluster: usize, kind: FuKind) -> usize {
        cluster * 3 + kind_index(kind)
    }

    /// Bits of word `w` that correspond to real slots (`< ii`); only the
    /// last word of a row can have a partial mask.
    fn valid_mask(&self, w: usize) -> u64 {
        let rem = self.ii as usize % 64;
        if w + 1 == self.words && rem != 0 {
            (1u64 << rem) - 1
        } else {
            !0
        }
    }

    /// Whether a `kind` unit is free in `cluster` at `cycle`.
    pub fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool {
        let slot = self.slot(cycle);
        let word = self.fu_full[self.fu_row(cluster, kind) * self.words + slot / 64];
        word & (1u64 << (slot % 64)) == 0
    }

    /// Reserves a `kind` unit in `cluster` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free (callers check [`Mrt::fu_free`] first).
    pub fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64) {
        assert!(
            self.fu_free(cluster, kind, cycle),
            "functional unit oversubscribed"
        );
        let slot = self.slot(cycle);
        let row = self.fu_row(cluster, kind);
        let idx = row * self.ii as usize + slot;
        self.fu_cnt[idx] += 1;
        if self.fu_cnt[idx] as usize == self.fu_cap[kind_index(kind)] {
            self.fu_full[row * self.words + slot / 64] |= 1u64 << (slot % 64);
        }
        if self.in_txn {
            self.journal.push(Undo::Fu(idx as u32));
        }
    }

    /// The first cycle with a free `kind` unit, walking from `from`
    /// towards `limit` inclusive (downwards when `descending`): a
    /// trailing-zeros (ascending) or leading-zeros (descending) walk over
    /// the row's free-mask, so occupied stretches are skipped a word at a
    /// time.
    pub fn next_free_fu_cycle(
        &self,
        cluster: usize,
        kind: FuKind,
        from: i64,
        limit: i64,
        descending: bool,
    ) -> Option<i64> {
        let row = self.fu_row(cluster, kind) * self.words;
        if descending {
            let mut cur = from;
            while cur >= limit {
                let slot = self.slot(cur);
                let (w, b) = (slot / 64, slot % 64);
                let free = !self.fu_full[row + w] & self.valid_mask(w);
                // bits at or below b — candidates within this word
                let masked = free & (!0u64 >> (63 - b));
                if masked != 0 {
                    let nb = 63 - masked.leading_zeros() as usize;
                    let cand = cur - (b - nb) as i64;
                    return (cand >= limit).then_some(cand);
                }
                // whole word occupied at/below b: jump below it (wrapping
                // from slot 0 to slot ii-1)
                cur -= b as i64 + 1;
            }
        } else {
            let mut cur = from;
            while cur <= limit {
                let slot = self.slot(cur);
                let (w, b) = (slot / 64, slot % 64);
                let free = !self.fu_full[row + w] & self.valid_mask(w);
                // bits at or above b — candidates within this word
                let masked = free & (!0u64 << b);
                if masked != 0 {
                    let nb = masked.trailing_zeros() as usize;
                    let cand = cur + (nb - b) as i64;
                    return (cand <= limit).then_some(cand);
                }
                // jump to the next word boundary (or wrap to slot 0)
                let boundary = ((w + 1) * 64).min(self.ii as usize);
                cur += (boundary - slot) as i64;
            }
        }
        None
    }

    /// Finds a register bus free for a whole transfer starting at `cycle`.
    pub fn bus_find(&self, cycle: i64) -> Option<usize> {
        (0..self.n_buses).find(|&b| self.bus_free(b, cycle))
    }

    /// Whether bus `bus` is free for a transfer starting at `cycle`.
    ///
    /// A transfer longer than the II can never fit: it would overlap its
    /// own next-iteration instance on the same bus (each static copy fires
    /// every II cycles).
    pub fn bus_free(&self, bus: usize, cycle: i64) -> bool {
        if self.transfer > self.ii {
            return false;
        }
        let row = bus * self.words;
        (0..self.transfer as i64).all(|k| {
            let slot = self.slot(cycle + k);
            self.bus[row + slot / 64] & (1u64 << (slot % 64)) == 0
        })
    }

    /// Reserves bus `bus` for a transfer starting at `cycle`, journaling
    /// one word-level delta per `u64` word the transfer touches.
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is taken.
    pub fn bus_reserve(&mut self, bus: usize, cycle: i64) {
        assert!(self.bus_free(bus, cycle), "register bus oversubscribed");
        let start = self.slot(cycle) as u32;
        let t = self.transfer;
        // consecutive modulo slots split into at most two contiguous runs
        // (the wrap at the II boundary starts the second)
        let first = t.min(self.ii - start);
        self.bus_set_run(bus, start, first);
        if first < t {
            self.bus_set_run(bus, 0, t - first);
        }
    }

    /// Sets `len` consecutive slot bits of `bus` starting at `start`
    /// (no wrap within a run), one `|=` and journal entry per word.
    fn bus_set_run(&mut self, bus: usize, start: u32, len: u32) {
        let row = bus * self.words;
        let mut slot = start as usize;
        let end = (start + len) as usize;
        while slot < end {
            let w = slot / 64;
            let word_end = ((w + 1) * 64).min(end);
            let lo = slot % 64;
            let n = word_end - slot;
            let bits = if n == 64 {
                !0u64
            } else {
                ((1u64 << n) - 1) << lo
            };
            let widx = row + w;
            debug_assert_eq!(self.bus[widx] & bits, 0, "bus_free checked above");
            self.bus[widx] |= bits;
            if self.in_txn {
                self.journal.push(Undo::BusWord {
                    widx: widx as u32,
                    bits,
                });
            }
            slot = word_end;
        }
    }

    /// Number of clusters this table covers.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Compares occupancy state (counters and packed words) against
    /// `other` without allocating — the equivalence checks' hot path.
    pub fn state_eq(&self, other: &Mrt) -> bool {
        self.fu_cnt == other.fu_cnt && self.fu_full == other.fu_full && self.bus == other.bus
    }

    /// The packed occupancy words (FU full-masks, then bus masks), for
    /// hashing a partial schedule's resource signature without rebuilding
    /// any per-slot representation.
    pub fn occupancy_words(&self) -> (&[u64], &[u64]) {
        (&self.fu_full, &self.bus)
    }
}

impl ReservationTable for Mrt {
    fn new(ii: u32, machine: &MachineConfig) -> Self {
        Mrt::new(ii, machine)
    }
    fn reset(&mut self, ii: u32, machine: &MachineConfig) {
        Mrt::reset(self, ii, machine);
    }
    fn ii(&self) -> u32 {
        Mrt::ii(self)
    }
    fn begin(&mut self) {
        Mrt::begin(self);
    }
    fn commit(&mut self) {
        Mrt::commit(self);
    }
    fn rollback(&mut self) {
        Mrt::rollback(self);
    }
    fn in_transaction(&self) -> bool {
        Mrt::in_transaction(self)
    }
    fn savepoint(&self) -> MrtSavepoint {
        Mrt::savepoint(self)
    }
    fn rollback_to(&mut self, sp: MrtSavepoint) {
        Mrt::rollback_to(self, sp);
    }
    fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool {
        Mrt::fu_free(self, cluster, kind, cycle)
    }
    fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64) {
        Mrt::fu_reserve(self, cluster, kind, cycle);
    }
    fn next_free_fu_cycle(
        &self,
        cluster: usize,
        kind: FuKind,
        from: i64,
        limit: i64,
        descending: bool,
    ) -> Option<i64> {
        Mrt::next_free_fu_cycle(self, cluster, kind, from, limit, descending)
    }
    fn bus_find(&self, cycle: i64) -> Option<usize> {
        Mrt::bus_find(self, cycle)
    }
    fn bus_free(&self, bus: usize, cycle: i64) -> bool {
        Mrt::bus_free(self, bus, cycle)
    }
    fn bus_reserve(&mut self, bus: usize, cycle: i64) {
        Mrt::bus_reserve(self, bus, cycle);
    }
    fn n_clusters(&self) -> usize {
        Mrt::n_clusters(self)
    }
}

/// The pre-refactor scalar-probe reservation table: per-slot `u16`
/// counters and per-slot `bool` bus flags, probed one scalar at a time.
///
/// Retained purely as the **reference implementation** for the
/// masked-vs-scalar equivalence suite (`tests/mrt_impl_equivalence.rs`)
/// and the shared unit tests below; production scheduling always uses
/// [`Mrt`]. Semantics — including transaction, savepoint and panic
/// behavior — match [`Mrt`] exactly.
#[derive(Debug, Clone)]
pub struct ScalarMrt {
    ii: u32,
    n_clusters: usize,
    fu_cap: [usize; 3],
    // [cluster][kind][slot]
    fu: Vec<u16>,
    // [bus][slot]
    bus: Vec<bool>,
    n_buses: usize,
    transfer: u32,
    journal: Vec<Undo>,
    in_txn: bool,
}

impl ScalarMrt {
    /// An empty table for the given II and machine.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, machine: &MachineConfig) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        ScalarMrt {
            ii,
            n_clusters: n,
            fu_cap: [
                machine.clusters.int_units,
                machine.clusters.fp_units,
                machine.clusters.mem_units,
            ],
            fu: vec![0; n * 3 * ii as usize],
            bus: vec![false; machine.buses.reg_buses * ii as usize],
            n_buses: machine.buses.reg_buses,
            transfer: machine.buses.transfer_cycles,
            journal: Vec::new(),
            in_txn: false,
        }
    }

    /// See [`Mrt::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32, machine: &MachineConfig) {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        self.ii = ii;
        self.n_clusters = n;
        self.fu_cap = [
            machine.clusters.int_units,
            machine.clusters.fp_units,
            machine.clusters.mem_units,
        ];
        self.fu.clear();
        self.fu.resize(n * 3 * ii as usize, 0);
        self.bus.clear();
        self.bus
            .resize(machine.buses.reg_buses * ii as usize, false);
        self.n_buses = machine.buses.reg_buses;
        self.transfer = machine.buses.transfer_cycles;
        self.journal.clear();
        self.in_txn = false;
    }

    /// See [`Mrt::begin`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open.
    pub fn begin(&mut self) {
        assert!(!self.in_txn, "MRT transactions do not nest");
        debug_assert!(self.journal.is_empty());
        self.in_txn = true;
    }

    /// See [`Mrt::commit`].
    pub fn commit(&mut self) {
        self.journal.clear();
        self.in_txn = false;
    }

    /// See [`Mrt::rollback`].
    pub fn rollback(&mut self) {
        while let Some(entry) = self.journal.pop() {
            self.undo(entry);
        }
        self.in_txn = false;
    }

    fn undo(&mut self, entry: Undo) {
        match entry {
            Undo::Fu(idx) => self.fu[idx as usize] -= 1,
            Undo::BusSlot(idx) => self.bus[idx as usize] = false,
            Undo::BusWord { .. } => unreachable!("masked journal entry in scalar table"),
        }
    }

    /// See [`Mrt::in_transaction`].
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// See [`Mrt::savepoint`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn savepoint(&self) -> MrtSavepoint {
        assert!(self.in_txn, "savepoint requires an open transaction");
        MrtSavepoint(self.journal.len())
    }

    /// See [`Mrt::rollback_to`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open or the savepoint was already
    /// unwound.
    pub fn rollback_to(&mut self, sp: MrtSavepoint) {
        assert!(self.in_txn, "rollback_to requires an open transaction");
        assert!(
            sp.0 <= self.journal.len(),
            "savepoint already unwound (LIFO order violated)"
        );
        while self.journal.len() > sp.0 {
            let entry = self.journal.pop().expect("journal entry");
            self.undo(entry);
        }
    }

    /// See [`Mrt::ii`].
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii as i64) as usize
    }

    fn fu_idx(&self, cluster: usize, kind: FuKind, cycle: i64) -> usize {
        (cluster * 3 + kind_index(kind)) * self.ii as usize + self.slot(cycle)
    }

    /// See [`Mrt::fu_free`].
    pub fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool {
        (self.fu[self.fu_idx(cluster, kind, cycle)] as usize) < self.fu_cap[kind_index(kind)]
    }

    /// See [`Mrt::fu_reserve`].
    ///
    /// # Panics
    ///
    /// Panics if no unit is free.
    pub fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64) {
        assert!(
            self.fu_free(cluster, kind, cycle),
            "functional unit oversubscribed"
        );
        let idx = self.fu_idx(cluster, kind, cycle);
        self.fu[idx] += 1;
        if self.in_txn {
            self.journal.push(Undo::Fu(idx as u32));
        }
    }

    /// See [`Mrt::next_free_fu_cycle`] — the scalar walk probes one cycle
    /// at a time, visiting exactly the cycles the masked walk yields.
    pub fn next_free_fu_cycle(
        &self,
        cluster: usize,
        kind: FuKind,
        from: i64,
        limit: i64,
        descending: bool,
    ) -> Option<i64> {
        let mut c = from;
        if descending {
            while c >= limit {
                if self.fu_free(cluster, kind, c) {
                    return Some(c);
                }
                c -= 1;
            }
        } else {
            while c <= limit {
                if self.fu_free(cluster, kind, c) {
                    return Some(c);
                }
                c += 1;
            }
        }
        None
    }

    /// See [`Mrt::bus_find`].
    pub fn bus_find(&self, cycle: i64) -> Option<usize> {
        (0..self.n_buses).find(|&b| self.bus_free(b, cycle))
    }

    /// See [`Mrt::bus_free`].
    pub fn bus_free(&self, bus: usize, cycle: i64) -> bool {
        if self.transfer > self.ii {
            return false;
        }
        (0..self.transfer as i64).all(|k| !self.bus[bus * self.ii as usize + self.slot(cycle + k)])
    }

    /// See [`Mrt::bus_reserve`].
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is taken.
    pub fn bus_reserve(&mut self, bus: usize, cycle: i64) {
        assert!(self.bus_free(bus, cycle), "register bus oversubscribed");
        for k in 0..self.transfer as i64 {
            let s = self.slot(cycle + k);
            let idx = bus * self.ii as usize + s;
            self.bus[idx] = true;
            if self.in_txn {
                self.journal.push(Undo::BusSlot(idx as u32));
            }
        }
    }

    /// See [`Mrt::n_clusters`].
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Compares occupancy state against `other` without allocating.
    pub fn state_eq(&self, other: &ScalarMrt) -> bool {
        self.fu == other.fu && self.bus == other.bus
    }
}

impl ReservationTable for ScalarMrt {
    fn new(ii: u32, machine: &MachineConfig) -> Self {
        ScalarMrt::new(ii, machine)
    }
    fn reset(&mut self, ii: u32, machine: &MachineConfig) {
        ScalarMrt::reset(self, ii, machine);
    }
    fn ii(&self) -> u32 {
        ScalarMrt::ii(self)
    }
    fn begin(&mut self) {
        ScalarMrt::begin(self);
    }
    fn commit(&mut self) {
        ScalarMrt::commit(self);
    }
    fn rollback(&mut self) {
        ScalarMrt::rollback(self);
    }
    fn in_transaction(&self) -> bool {
        ScalarMrt::in_transaction(self)
    }
    fn savepoint(&self) -> MrtSavepoint {
        ScalarMrt::savepoint(self)
    }
    fn rollback_to(&mut self, sp: MrtSavepoint) {
        ScalarMrt::rollback_to(self, sp);
    }
    fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool {
        ScalarMrt::fu_free(self, cluster, kind, cycle)
    }
    fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64) {
        ScalarMrt::fu_reserve(self, cluster, kind, cycle);
    }
    fn next_free_fu_cycle(
        &self,
        cluster: usize,
        kind: FuKind,
        from: i64,
        limit: i64,
        descending: bool,
    ) -> Option<i64> {
        ScalarMrt::next_free_fu_cycle(self, cluster, kind, from, limit, descending)
    }
    fn bus_find(&self, cycle: i64) -> Option<usize> {
        ScalarMrt::bus_find(self, cycle)
    }
    fn bus_free(&self, bus: usize, cycle: i64) -> bool {
        ScalarMrt::bus_free(self, bus, cycle)
    }
    fn bus_reserve(&mut self, bus: usize, cycle: i64) {
        ScalarMrt::bus_reserve(self, bus, cycle);
    }
    fn n_clusters(&self) -> usize {
        ScalarMrt::n_clusters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared behavioral suite, instantiated for both implementations:
    /// every contract the scheduler relies on — capacity, wrap, panic
    /// messages, transactions, savepoints, reset — must hold identically
    /// for the masked and the scalar table.
    macro_rules! mrt_contract_tests {
        ($modname:ident, $table:ty) => {
            mod $modname {
                use super::*;

                fn mrt(ii: u32) -> $table {
                    <$table>::new(ii, &MachineConfig::word_interleaved_4())
                }

                #[test]
                fn fu_capacity_is_one_per_kind() {
                    let mut t = mrt(4);
                    assert!(t.fu_free(0, FuKind::Mem, 2));
                    t.fu_reserve(0, FuKind::Mem, 2);
                    assert!(!t.fu_free(0, FuKind::Mem, 2));
                    // same slot, different cluster or kind is fine
                    assert!(t.fu_free(1, FuKind::Mem, 2));
                    assert!(t.fu_free(0, FuKind::Int, 2));
                    // modulo wrap: cycle 6 shares slot 2 at II 4
                    assert!(!t.fu_free(0, FuKind::Mem, 6));
                    // negative cycles wrap correctly: -2 ≡ 2 (mod 4)
                    assert!(!t.fu_free(0, FuKind::Mem, -2));
                }

                #[test]
                #[should_panic(expected = "oversubscribed")]
                fn fu_over_reservation_panics() {
                    let mut t = mrt(4);
                    t.fu_reserve(0, FuKind::Int, 1);
                    t.fu_reserve(0, FuKind::Int, 5); // same modulo slot
                }

                #[test]
                fn bus_transfer_occupies_two_slots() {
                    let mut t = mrt(4);
                    let b = t.bus_find(1).unwrap();
                    t.bus_reserve(b, 1);
                    // bus b busy at slots 1 and 2
                    assert!(!t.bus_free(b, 1));
                    assert!(!t.bus_free(b, 2)); // starting at 2 needs slots 2,3; 2 busy
                    assert!(t.bus_free(b, 3)); // slots 3,0 free
                                               // other buses unaffected
                    assert!(t.bus_find(1).is_some());
                }

                #[test]
                fn bus_exhaustion() {
                    let mut t = mrt(2);
                    // II=2: each transfer occupies both slots of a bus -> 4 transfers max
                    for _ in 0..4 {
                        let b = t.bus_find(0).expect("bus available");
                        t.bus_reserve(b, 0);
                    }
                    assert_eq!(t.bus_find(0), None);
                    assert_eq!(t.bus_find(1), None);
                }

                #[test]
                fn bus_wraps_around_ii() {
                    let mut t = mrt(3);
                    t.bus_reserve(0, 2); // occupies slots 2 and 0
                    assert!(!t.bus_free(0, 0));
                    assert!(!t.bus_free(0, 1)); // starting at 1 needs slots 1,2; 2 busy
                }

                #[test]
                #[should_panic(expected = "II must be positive")]
                fn zero_ii_rejected() {
                    let _ = mrt(0);
                }

                #[test]
                fn rollback_restores_exact_fu_and_bus_state() {
                    let mut t = mrt(4);
                    // committed baseline: one FU, one transfer
                    t.fu_reserve(0, FuKind::Int, 1);
                    t.bus_reserve(0, 3); // slots 3 and 0
                    let before = t.clone();
                    t.begin();
                    t.fu_reserve(1, FuKind::Mem, 2);
                    t.fu_reserve(1, FuKind::Int, 2);
                    let b = t.bus_find(1).expect("bus free");
                    t.bus_reserve(b, 1);
                    assert!(!t.state_eq(&before), "reservations visible in-flight");
                    t.rollback();
                    assert!(t.state_eq(&before), "rollback restores exact counters");
                    assert!(!t.in_transaction());
                    // the unwound resources are reservable again
                    assert!(t.fu_free(1, FuKind::Mem, 2));
                    assert!(t.bus_free(b, 1));
                }

                #[test]
                fn rollback_after_partial_multi_slot_bus_reservation() {
                    // II 3, transfer 2: a transfer starting at slot 2 wraps to slot 0.
                    // Roll back a transaction whose bus reservation spans the wrap plus
                    // an earlier whole transfer: every individual slot flag must clear.
                    let mut t = mrt(3);
                    let fresh = t.clone();
                    t.begin();
                    t.bus_reserve(0, 2); // slots 2 and (wrapping) 0 of bus 0
                    t.bus_reserve(1, 1); // slots 1 and 2 of bus 1
                    t.rollback();
                    assert!(t.state_eq(&fresh), "all bus slots cleared");
                    assert!(t.bus_free(0, 0) && t.bus_free(0, 1) && t.bus_free(0, 2));
                }

                #[test]
                fn commit_is_idempotent_and_keeps_reservations() {
                    let mut t = mrt(4);
                    t.begin();
                    t.fu_reserve(0, FuKind::Int, 0);
                    t.bus_reserve(0, 0);
                    t.commit();
                    let committed = t.clone();
                    t.commit(); // no open transaction: harmless
                    assert!(t.state_eq(&committed));
                    // a later rollback must not unwind committed reservations
                    t.rollback();
                    assert!(t.state_eq(&committed));
                    assert!(!t.fu_free(0, FuKind::Int, 0));
                }

                #[test]
                #[should_panic(expected = "do not nest")]
                fn nested_begin_panics() {
                    let mut t = mrt(4);
                    t.begin();
                    t.begin();
                }

                #[test]
                fn savepoints_unwind_in_lifo_order() {
                    let mut t = mrt(4);
                    t.begin();
                    t.fu_reserve(0, FuKind::Int, 0);
                    let after_first = t.clone();
                    let sp1 = t.savepoint();
                    t.fu_reserve(0, FuKind::Mem, 1);
                    t.bus_reserve(0, 2);
                    let sp2 = t.savepoint();
                    t.fu_reserve(1, FuKind::Fp, 3);
                    // inner level unwinds only its own reservations
                    t.rollback_to(sp2);
                    assert!(t.fu_free(1, FuKind::Fp, 3));
                    assert!(!t.fu_free(0, FuKind::Mem, 1), "outer level intact");
                    assert!(t.in_transaction(), "transaction stays open");
                    // outer level unwinds back to the first reservation
                    t.rollback_to(sp1);
                    assert!(t.state_eq(&after_first));
                    // a full rollback still unwinds everything before the savepoints
                    t.rollback();
                    assert!(t.fu_free(0, FuKind::Int, 0));
                }

                #[test]
                fn savepoint_rollback_restores_wrapped_bus_slots() {
                    // II 3, transfer 2: reservation at slot 2 wraps to slot 0
                    let mut t = mrt(3);
                    t.begin();
                    t.bus_reserve(1, 1);
                    let sp = t.savepoint();
                    t.bus_reserve(0, 2);
                    t.rollback_to(sp);
                    assert!(
                        t.bus_free(0, 0) && t.bus_free(0, 2),
                        "wrapped slots cleared"
                    );
                    assert!(!t.bus_free(1, 1), "pre-savepoint transfer intact");
                }

                #[test]
                #[should_panic(expected = "open transaction")]
                fn savepoint_outside_transaction_panics() {
                    let t = mrt(4);
                    let _ = t.savepoint();
                }

                #[test]
                #[should_panic(expected = "LIFO")]
                fn stale_savepoint_panics() {
                    let mut t = mrt(4);
                    t.begin();
                    t.fu_reserve(0, FuKind::Int, 0);
                    let sp_inner = {
                        let sp_outer = t.savepoint();
                        t.fu_reserve(0, FuKind::Int, 1);
                        let inner = t.savepoint();
                        t.rollback_to(sp_outer);
                        inner
                    };
                    t.rollback_to(sp_inner); // journal is shorter than the mark now
                }

                #[test]
                fn reset_reuses_table_for_new_ii() {
                    let mut t = mrt(3);
                    t.fu_reserve(0, FuKind::Int, 1);
                    t.begin();
                    t.fu_reserve(0, FuKind::Int, 2);
                    let m = MachineConfig::word_interleaved_4();
                    t.reset(5, &m);
                    assert_eq!(t.ii(), 5);
                    assert!(!t.in_transaction());
                    let fresh = <$table>::new(5, &m);
                    assert!(t.state_eq(&fresh), "reset == fresh table");
                }

                #[test]
                fn free_cycle_walk_skips_occupied_slots() {
                    let mut t = mrt(6);
                    t.fu_reserve(0, FuKind::Int, 0);
                    t.fu_reserve(0, FuKind::Int, 1);
                    t.fu_reserve(0, FuKind::Int, 3);
                    // ascending from 0: first free is 2, then 4
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 0, 5, false), Some(2));
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 3, 5, false), Some(4));
                    // descending from 3: first free at or below is 2
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 3, 0, true), Some(2));
                    // limits are inclusive and respected
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 0, 1, false), None);
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 3, 3, true), None);
                    // other kinds unaffected
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Mem, 0, 5, false), Some(0));
                }

                #[test]
                fn free_cycle_walk_wraps_modulo_slots() {
                    let mut t = mrt(4);
                    t.fu_reserve(0, FuKind::Int, 0); // slot 0
                    t.fu_reserve(0, FuKind::Int, 3); // slot 3
                                                     // window [3, 6]: slots 3,0,1,2 — first free cycle is 5 (slot 1)
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 3, 6, false), Some(5));
                    // descending window [−2, 1] from 1: slot 1 free
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 1, -2, true), Some(1));
                    // descending from 0 (slot 0 busy): wraps back to cycle −1 = slot 3
                    // (busy) then −2 = slot 2 (free)
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 0, -3, true), Some(-2));
                    // a fully-occupied row yields nothing over any window
                    t.fu_reserve(0, FuKind::Int, 1);
                    t.fu_reserve(0, FuKind::Int, 2);
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 0, 3, false), None);
                    assert_eq!(t.next_free_fu_cycle(0, FuKind::Int, 7, 4, true), None);
                }

                #[test]
                fn multi_word_rows_cover_large_iis() {
                    // II 130 spans three 64-bit words; exercise probes,
                    // walks and wrap behavior across word boundaries
                    let mut t = mrt(130);
                    for c in 0..64 {
                        t.fu_reserve(1, FuKind::Mem, c);
                    }
                    assert!(!t.fu_free(1, FuKind::Mem, 63));
                    assert!(t.fu_free(1, FuKind::Mem, 64));
                    assert_eq!(
                        t.next_free_fu_cycle(1, FuKind::Mem, 0, 129, false),
                        Some(64)
                    );
                    assert_eq!(t.next_free_fu_cycle(1, FuKind::Mem, 63, 0, true), None);
                    t.fu_reserve(1, FuKind::Mem, 129); // last slot (word 3, bit 1)
                    assert_eq!(
                        t.next_free_fu_cycle(1, FuKind::Mem, 129, 64, true),
                        Some(128)
                    );
                    // a bus transfer crossing the 64-bit word boundary
                    t.begin();
                    t.bus_reserve(2, 63); // slots 63 (word 0) and 64 (word 1)
                    assert!(!t.bus_free(2, 63));
                    assert!(!t.bus_free(2, 64));
                    t.rollback();
                    assert!(t.bus_free(2, 63) && t.bus_free(2, 64));
                }
            }
        };
    }

    mrt_contract_tests!(masked, Mrt);
    mrt_contract_tests!(scalar, ScalarMrt);

    /// Beyond the shared contract: the two implementations must agree
    /// probe-for-probe on a randomized reservation trace, including the
    /// exact cycles their candidate walks yield.
    #[test]
    fn masked_and_scalar_tables_agree_on_random_traces() {
        let machine = MachineConfig::word_interleaved_4();
        // deliberately includes IIs near and across the word boundary
        for ii in [1u32, 2, 3, 7, 31, 63, 64, 65, 97, 130] {
            let mut a = Mrt::new(ii, &machine);
            let mut b = ScalarMrt::new(ii, &machine);
            // a simple deterministic LCG so the trace is reproducible
            let mut state = 0x2545_f491_4f6c_dd1du64 ^ u64::from(ii);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            a.begin();
            b.begin();
            let mut sps: Vec<(MrtSavepoint, MrtSavepoint)> = Vec::new();
            for _ in 0..400 {
                let cycle = next() as i64 % (2 * ii as i64 + 3) - ii as i64;
                match next() % 6 {
                    0 => {
                        let cluster = (next() % 4) as usize;
                        let kind = [FuKind::Int, FuKind::Fp, FuKind::Mem][(next() % 3) as usize];
                        assert_eq!(
                            a.fu_free(cluster, kind, cycle),
                            b.fu_free(cluster, kind, cycle)
                        );
                        if a.fu_free(cluster, kind, cycle) {
                            a.fu_reserve(cluster, kind, cycle);
                            b.fu_reserve(cluster, kind, cycle);
                        }
                    }
                    1 => {
                        assert_eq!(a.bus_find(cycle), b.bus_find(cycle));
                        if let Some(bus) = a.bus_find(cycle) {
                            a.bus_reserve(bus, cycle);
                            b.bus_reserve(bus, cycle);
                        }
                    }
                    2 => {
                        let cluster = (next() % 4) as usize;
                        let kind = [FuKind::Int, FuKind::Fp, FuKind::Mem][(next() % 3) as usize];
                        let span = (next() % (ii as u64 + 1)) as i64;
                        let descending = next() % 2 == 0;
                        let limit = if descending {
                            cycle - span
                        } else {
                            cycle + span
                        };
                        assert_eq!(
                            a.next_free_fu_cycle(cluster, kind, cycle, limit, descending),
                            b.next_free_fu_cycle(cluster, kind, cycle, limit, descending),
                            "walk diverged at ii={ii}"
                        );
                    }
                    3 => {
                        sps.push((a.savepoint(), b.savepoint()));
                    }
                    4 => {
                        if let Some((sa, sb)) = sps.pop() {
                            a.rollback_to(sa);
                            b.rollback_to(sb);
                        }
                    }
                    _ => {
                        let bus = (next() % 4) as usize;
                        assert_eq!(a.bus_free(bus, cycle), b.bus_free(bus, cycle));
                    }
                }
            }
            a.rollback();
            b.rollback();
            let fresh_a = Mrt::new(ii, &machine);
            let fresh_b = ScalarMrt::new(ii, &machine);
            assert!(a.state_eq(&fresh_a), "masked rollback left residue");
            assert!(b.state_eq(&fresh_b), "scalar rollback left residue");
        }
    }

    #[test]
    fn occupancy_words_expose_packed_state() {
        let machine = MachineConfig::word_interleaved_4();
        let mut t = Mrt::new(4, &machine);
        let (fu0, bus0) = {
            let (f, b) = t.occupancy_words();
            (f.to_vec(), b.to_vec())
        };
        assert!(fu0.iter().all(|&w| w == 0) && bus0.iter().all(|&w| w == 0));
        t.fu_reserve(0, FuKind::Int, 2);
        t.bus_reserve(1, 3); // slots 3 and 0
        let (fu, bus) = t.occupancy_words();
        assert_eq!(fu[0], 1 << 2); // row (cluster 0, Int) is row 0
        assert_eq!(bus[1], (1 << 3) | 1);
    }
}
