//! Modulo reservation table: functional-unit slots and register-bus slots.

use vliw_ir::FuKind;
use vliw_machine::MachineConfig;

/// Tracks resource usage of a partial modulo schedule at one II.
///
/// Functional units are per-(cluster, kind, modulo-slot) counters; register
/// buses are per-(bus, modulo-slot) flags, and a transfer occupies
/// [`transfer_cycles`](vliw_machine::BusConfig::transfer_cycles) consecutive
/// slots on the same bus (the buses run at half the core frequency).
///
/// # Transactions
///
/// The scheduler probes thousands of candidate `(cluster, cycle)` slots per
/// placement, most of which fail on bus availability. Instead of cloning
/// the whole table per probe, open a transaction with [`Mrt::begin`]: every
/// [`Mrt::fu_reserve`] / [`Mrt::bus_reserve`] then appends an undo entry to
/// an internal journal, [`Mrt::rollback`] unwinds exactly those
/// reservations (O(reservations made), not O(table)), and [`Mrt::commit`]
/// makes them permanent. Transactions do not nest — one probe at a time —
/// and `commit`/`rollback` outside a transaction are no-ops, so a commit is
/// idempotent.
///
/// Backtracking searchers (the exact branch-and-bound backend) need more
/// than one probe of undo depth: [`Mrt::savepoint`] marks a position in
/// the open transaction's journal and [`Mrt::rollback_to`] unwinds back to
/// it while keeping the transaction open, so the journal doubles as the
/// search's undo stack — one savepoint per decision level.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    n_clusters: usize,
    fu_cap: [usize; 3],
    // [cluster][kind][slot]
    fu: Vec<u16>,
    // [bus][slot]
    bus: Vec<bool>,
    n_buses: usize,
    transfer: u32,
    // undo log of the open transaction (empty when none is open)
    journal: Vec<Undo>,
    in_txn: bool,
}

/// A position in an open transaction's journal, taken with
/// [`Mrt::savepoint`] and released (LIFO) with [`Mrt::rollback_to`].
#[derive(Debug, Clone, Copy)]
pub struct MrtSavepoint(usize);

/// One journal entry: the flat index a reservation touched.
#[derive(Debug, Clone, Copy)]
enum Undo {
    /// `fu[idx] += 1` happened; undo decrements.
    Fu(u32),
    /// `bus[idx] = true` happened (one entry per occupied slot); undo
    /// clears.
    BusSlot(u32),
}

fn kind_index(kind: FuKind) -> usize {
    match kind {
        FuKind::Int => 0,
        FuKind::Fp => 1,
        FuKind::Mem => 2,
    }
}

impl Mrt {
    /// An empty table for the given II and machine.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, machine: &MachineConfig) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        Mrt {
            ii,
            n_clusters: n,
            fu_cap: [
                machine.clusters.int_units,
                machine.clusters.fp_units,
                machine.clusters.mem_units,
            ],
            fu: vec![0; n * 3 * ii as usize],
            bus: vec![false; machine.buses.reg_buses * ii as usize],
            n_buses: machine.buses.reg_buses,
            transfer: machine.buses.transfer_cycles,
            journal: Vec::new(),
            in_txn: false,
        }
    }

    /// Re-initializes the table for a (possibly different) II and machine,
    /// reusing the existing allocations — the scheduler resets one table
    /// per placement attempt instead of building a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32, machine: &MachineConfig) {
        assert!(ii > 0, "II must be positive");
        let n = machine.clusters.n_clusters;
        self.ii = ii;
        self.n_clusters = n;
        self.fu_cap = [
            machine.clusters.int_units,
            machine.clusters.fp_units,
            machine.clusters.mem_units,
        ];
        self.fu.clear();
        self.fu.resize(n * 3 * ii as usize, 0);
        self.bus.clear();
        self.bus
            .resize(machine.buses.reg_buses * ii as usize, false);
        self.n_buses = machine.buses.reg_buses;
        self.transfer = machine.buses.transfer_cycles;
        self.journal.clear();
        self.in_txn = false;
    }

    /// Opens a transaction: subsequent reservations are journaled until
    /// [`Mrt::commit`] or [`Mrt::rollback`].
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open (transactions do not nest).
    pub fn begin(&mut self) {
        assert!(!self.in_txn, "MRT transactions do not nest");
        debug_assert!(self.journal.is_empty());
        self.in_txn = true;
    }

    /// Makes the open transaction's reservations permanent. A no-op when
    /// no transaction is open, so committing twice is harmless.
    pub fn commit(&mut self) {
        self.journal.clear();
        self.in_txn = false;
    }

    /// Unwinds every reservation made since [`Mrt::begin`], restoring the
    /// exact functional-unit counters and bus flags. A no-op when no
    /// transaction is open.
    pub fn rollback(&mut self) {
        while let Some(entry) = self.journal.pop() {
            match entry {
                Undo::Fu(idx) => self.fu[idx as usize] -= 1,
                Undo::BusSlot(idx) => self.bus[idx as usize] = false,
            }
        }
        self.in_txn = false;
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Marks the current position in the open transaction's journal.
    /// [`Mrt::rollback_to`] unwinds back to the mark while leaving the
    /// transaction (and every reservation made before the mark) intact —
    /// the nested undo stack a backtracking searcher layers on top of the
    /// flat begin/commit/rollback probe protocol.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn savepoint(&self) -> MrtSavepoint {
        assert!(self.in_txn, "savepoint requires an open transaction");
        MrtSavepoint(self.journal.len())
    }

    /// Unwinds every reservation made since `sp`, restoring the exact
    /// functional-unit counters and bus flags at the mark. The transaction
    /// stays open; earlier savepoints of the same transaction remain
    /// valid.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open, or if the journal has already
    /// been unwound past `sp` (a savepoint must be released in LIFO
    /// order).
    pub fn rollback_to(&mut self, sp: MrtSavepoint) {
        assert!(self.in_txn, "rollback_to requires an open transaction");
        assert!(
            sp.0 <= self.journal.len(),
            "savepoint already unwound (LIFO order violated)"
        );
        while self.journal.len() > sp.0 {
            match self.journal.pop().expect("journal entry") {
                Undo::Fu(idx) => self.fu[idx as usize] -= 1,
                Undo::BusSlot(idx) => self.bus[idx as usize] = false,
            }
        }
    }

    /// The II this table was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii as i64) as usize
    }

    fn fu_idx(&self, cluster: usize, kind: FuKind, cycle: i64) -> usize {
        (cluster * 3 + kind_index(kind)) * self.ii as usize + self.slot(cycle)
    }

    /// Whether a `kind` unit is free in `cluster` at `cycle`.
    pub fn fu_free(&self, cluster: usize, kind: FuKind, cycle: i64) -> bool {
        (self.fu[self.fu_idx(cluster, kind, cycle)] as usize) < self.fu_cap[kind_index(kind)]
    }

    /// Reserves a `kind` unit in `cluster` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free (callers check [`Mrt::fu_free`] first).
    pub fn fu_reserve(&mut self, cluster: usize, kind: FuKind, cycle: i64) {
        assert!(
            self.fu_free(cluster, kind, cycle),
            "functional unit oversubscribed"
        );
        let idx = self.fu_idx(cluster, kind, cycle);
        self.fu[idx] += 1;
        if self.in_txn {
            self.journal.push(Undo::Fu(idx as u32));
        }
    }

    /// Finds a register bus free for a whole transfer starting at `cycle`.
    pub fn bus_find(&self, cycle: i64) -> Option<usize> {
        (0..self.n_buses).find(|&b| self.bus_free(b, cycle))
    }

    /// Whether bus `bus` is free for a transfer starting at `cycle`.
    ///
    /// A transfer longer than the II can never fit: it would overlap its
    /// own next-iteration instance on the same bus (each static copy fires
    /// every II cycles).
    pub fn bus_free(&self, bus: usize, cycle: i64) -> bool {
        if self.transfer > self.ii {
            return false;
        }
        (0..self.transfer as i64).all(|k| !self.bus[bus * self.ii as usize + self.slot(cycle + k)])
    }

    /// Reserves bus `bus` for a transfer starting at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if any needed slot is taken.
    pub fn bus_reserve(&mut self, bus: usize, cycle: i64) {
        assert!(self.bus_free(bus, cycle), "register bus oversubscribed");
        for k in 0..self.transfer as i64 {
            let s = self.slot(cycle + k);
            let idx = bus * self.ii as usize + s;
            self.bus[idx] = true;
            if self.in_txn {
                self.journal.push(Undo::BusSlot(idx as u32));
            }
        }
    }

    /// Number of clusters this table covers.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    #[cfg(test)]
    fn raw_state(&self) -> (Vec<u16>, Vec<bool>) {
        (self.fu.clone(), self.bus.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt(ii: u32) -> Mrt {
        Mrt::new(ii, &MachineConfig::word_interleaved_4())
    }

    #[test]
    fn fu_capacity_is_one_per_kind() {
        let mut t = mrt(4);
        assert!(t.fu_free(0, FuKind::Mem, 2));
        t.fu_reserve(0, FuKind::Mem, 2);
        assert!(!t.fu_free(0, FuKind::Mem, 2));
        // same slot, different cluster or kind is fine
        assert!(t.fu_free(1, FuKind::Mem, 2));
        assert!(t.fu_free(0, FuKind::Int, 2));
        // modulo wrap: cycle 6 shares slot 2 at II 4
        assert!(!t.fu_free(0, FuKind::Mem, 6));
        // negative cycles wrap correctly: -2 ≡ 2 (mod 4)
        assert!(!t.fu_free(0, FuKind::Mem, -2));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn fu_over_reservation_panics() {
        let mut t = mrt(4);
        t.fu_reserve(0, FuKind::Int, 1);
        t.fu_reserve(0, FuKind::Int, 5); // same modulo slot
    }

    #[test]
    fn bus_transfer_occupies_two_slots() {
        let mut t = mrt(4);
        let b = t.bus_find(1).unwrap();
        t.bus_reserve(b, 1);
        // bus b busy at slots 1 and 2
        assert!(!t.bus_free(b, 1));
        assert!(!t.bus_free(b, 2)); // starting at 2 needs slots 2,3; 2 busy
        assert!(t.bus_free(b, 3)); // slots 3,0 free
                                   // other buses unaffected
        assert!(t.bus_find(1).is_some());
    }

    #[test]
    fn bus_exhaustion() {
        let mut t = mrt(2);
        // II=2: each transfer occupies both slots of a bus -> 4 transfers max
        for _ in 0..4 {
            let b = t.bus_find(0).expect("bus available");
            t.bus_reserve(b, 0);
        }
        assert_eq!(t.bus_find(0), None);
        assert_eq!(t.bus_find(1), None);
    }

    #[test]
    fn bus_wraps_around_ii() {
        let mut t = mrt(3);
        t.bus_reserve(0, 2); // occupies slots 2 and 0
        assert!(!t.bus_free(0, 0));
        assert!(!t.bus_free(0, 1)); // starting at 1 needs slots 1,2; 2 busy
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_rejected() {
        let _ = mrt(0);
    }

    #[test]
    fn rollback_restores_exact_fu_and_bus_state() {
        let mut t = mrt(4);
        // committed baseline: one FU, one transfer
        t.fu_reserve(0, FuKind::Int, 1);
        t.bus_reserve(0, 3); // slots 3 and 0
        let before = t.raw_state();
        t.begin();
        t.fu_reserve(1, FuKind::Mem, 2);
        t.fu_reserve(1, FuKind::Int, 2);
        let b = t.bus_find(1).expect("bus free");
        t.bus_reserve(b, 1);
        assert_ne!(t.raw_state(), before, "reservations visible in-flight");
        t.rollback();
        assert_eq!(t.raw_state(), before, "rollback restores exact counters");
        assert!(!t.in_transaction());
        // the unwound resources are reservable again
        assert!(t.fu_free(1, FuKind::Mem, 2));
        assert!(t.bus_free(b, 1));
    }

    #[test]
    fn rollback_after_partial_multi_slot_bus_reservation() {
        // II 3, transfer 2: a transfer starting at slot 2 wraps to slot 0.
        // Roll back a transaction whose bus reservation spans the wrap plus
        // an earlier whole transfer: every individual slot flag must clear.
        let mut t = mrt(3);
        t.begin();
        t.bus_reserve(0, 2); // slots 2 and (wrapping) 0 of bus 0
        t.bus_reserve(1, 1); // slots 1 and 2 of bus 1
        t.rollback();
        let (_, bus) = t.raw_state();
        assert!(bus.iter().all(|&b| !b), "all bus slots cleared");
        assert!(t.bus_free(0, 0) && t.bus_free(0, 1) && t.bus_free(0, 2));
    }

    #[test]
    fn commit_is_idempotent_and_keeps_reservations() {
        let mut t = mrt(4);
        t.begin();
        t.fu_reserve(0, FuKind::Int, 0);
        t.bus_reserve(0, 0);
        t.commit();
        let committed = t.raw_state();
        t.commit(); // no open transaction: harmless
        assert_eq!(t.raw_state(), committed);
        // a later rollback must not unwind committed reservations
        t.rollback();
        assert_eq!(t.raw_state(), committed);
        assert!(!t.fu_free(0, FuKind::Int, 0));
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_begin_panics() {
        let mut t = mrt(4);
        t.begin();
        t.begin();
    }

    #[test]
    fn savepoints_unwind_in_lifo_order() {
        let mut t = mrt(4);
        t.begin();
        t.fu_reserve(0, FuKind::Int, 0);
        let after_first = t.raw_state();
        let sp1 = t.savepoint();
        t.fu_reserve(0, FuKind::Mem, 1);
        t.bus_reserve(0, 2);
        let sp2 = t.savepoint();
        t.fu_reserve(1, FuKind::Fp, 3);
        // inner level unwinds only its own reservations
        t.rollback_to(sp2);
        assert!(t.fu_free(1, FuKind::Fp, 3));
        assert!(!t.fu_free(0, FuKind::Mem, 1), "outer level intact");
        assert!(t.in_transaction(), "transaction stays open");
        // outer level unwinds back to the first reservation
        t.rollback_to(sp1);
        assert_eq!(t.raw_state(), after_first);
        // a full rollback still unwinds everything before the savepoints
        t.rollback();
        assert!(t.fu_free(0, FuKind::Int, 0));
    }

    #[test]
    fn savepoint_rollback_restores_wrapped_bus_slots() {
        // II 3, transfer 2: reservation at slot 2 wraps to slot 0
        let mut t = mrt(3);
        t.begin();
        t.bus_reserve(1, 1);
        let sp = t.savepoint();
        t.bus_reserve(0, 2);
        t.rollback_to(sp);
        assert!(
            t.bus_free(0, 0) && t.bus_free(0, 2),
            "wrapped slots cleared"
        );
        assert!(!t.bus_free(1, 1), "pre-savepoint transfer intact");
    }

    #[test]
    #[should_panic(expected = "open transaction")]
    fn savepoint_outside_transaction_panics() {
        let t = mrt(4);
        let _ = t.savepoint();
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn stale_savepoint_panics() {
        let mut t = mrt(4);
        t.begin();
        t.fu_reserve(0, FuKind::Int, 0);
        let sp_inner = {
            let sp_outer = t.savepoint();
            t.fu_reserve(0, FuKind::Int, 1);
            let inner = t.savepoint();
            t.rollback_to(sp_outer);
            inner
        };
        t.rollback_to(sp_inner); // journal is shorter than the mark now
    }

    #[test]
    fn reset_reuses_table_for_new_ii() {
        let mut t = mrt(3);
        t.fu_reserve(0, FuKind::Int, 1);
        t.begin();
        t.fu_reserve(0, FuKind::Int, 2);
        let m = MachineConfig::word_interleaved_4();
        t.reset(5, &m);
        assert_eq!(t.ii(), 5);
        assert!(!t.in_transaction());
        let fresh = Mrt::new(5, &m);
        assert_eq!(t.raw_state(), fresh.raw_state(), "reset == fresh table");
    }
}
