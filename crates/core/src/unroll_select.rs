//! Unrolling-factor computation and selective unrolling (§4.3.1, step 1).

use vliw_ir::{unroll, LoopKernel};
use vliw_machine::MachineConfig;

use crate::engine::{schedule_kernel, ScheduleOptions};
use crate::schedule::{Schedule, ScheduleError};

/// Which of the paper's three unrolling strategies a factor came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnrollChoice {
    /// No unrolling (factor 1).
    None,
    /// Unroll by the number of clusters (`unrollxN`).
    TimesN,
    /// The optimal unrolling factor (OUF) — the lcm of the individual
    /// factors, which makes every analyzable stride a multiple of `N×I`.
    Ouf,
}

impl std::fmt::Display for UnrollChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UnrollChoice::None => "no unrolling",
            UnrollChoice::TimesN => "unrollxN",
            UnrollChoice::Ouf => "OUF",
        };
        f.write_str(s)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// The *individual unrolling factor* of one memory instruction:
/// `Ui = N×I / gcd(N×I, Si mod N×I)` — the smallest unroll multiple that
/// makes the instruction's stride a multiple of `N×I`.
pub fn individual_unroll_factor(stride: i64, ni: i64) -> u32 {
    assert!(ni > 0, "N x I must be positive");
    let s = stride.rem_euclid(ni) as u64;
    let g = gcd(ni as u64, s); // gcd(ni, 0) = ni -> Ui = 1
    (ni as u64 / g) as u32
}

/// The loop's optimal unrolling factor (OUF): the lcm of the individual
/// factors over every memory instruction with a known stride, a hit rate
/// greater than zero and a granularity no larger than the interleave
/// factor; capped at `N×I` (the paper's maximum).
pub fn optimal_unroll_factor(kernel: &LoopKernel, machine: &MachineConfig) -> u32 {
    let ni = machine.ni_bytes();
    let mut uf = 1u64;
    for op in kernel.mem_ops() {
        let Some(mem) = &op.mem else { continue };
        let Some(stride) = mem.stride else { continue };
        if mem.hit_rate() <= 0.0 {
            continue;
        }
        if mem.granularity as usize > machine.cache.interleave_bytes {
            continue;
        }
        uf = lcm(uf, individual_unroll_factor(stride, ni) as u64);
    }
    (uf.min(ni as u64)) as u32
}

/// The candidate `(choice, factor)` pairs of selective unrolling, with
/// duplicate factors removed (e.g. when OUF == N).
pub fn unroll_candidates(kernel: &LoopKernel, machine: &MachineConfig) -> Vec<(UnrollChoice, u32)> {
    let n = machine.n_clusters() as u32;
    let ouf = optimal_unroll_factor(kernel, machine);
    let mut out: Vec<(UnrollChoice, u32)> = vec![(UnrollChoice::None, 1)];
    if n != 1 && ouf != n {
        out.push((UnrollChoice::TimesN, n));
    }
    if ouf != 1 {
        out.push((UnrollChoice::Ouf, ouf));
    }
    out
}

/// Result of selective unrolling: the chosen variant and the evaluations
/// of every candidate.
#[derive(Debug, Clone)]
pub struct SelectiveUnroll {
    /// The strategy chosen.
    pub choice: UnrollChoice,
    /// The unroll factor chosen.
    pub factor: u32,
    /// The unrolled kernel.
    pub kernel: LoopKernel,
    /// The schedule of the chosen kernel.
    pub schedule: Schedule,
    /// All candidate evaluations: `(choice, factor, II, Texec)`.
    pub evaluated: Vec<(UnrollChoice, u32, u32, f64)>,
}

/// Runs selective unrolling: schedules the loop at each candidate factor
/// and keeps the variant minimizing the paper's execution-time estimate
/// `Texec = (avgiter + SC − 1) × II`.
///
/// `prepare` is invoked on each unrolled variant before scheduling — the
/// experiment pipeline uses it to run the profiling pass (per-copy
/// preferred clusters only exist after unrolling). Pass `|_| {}` to keep
/// the profiles inherited from the original ops.
///
/// # Errors
///
/// Propagates the scheduling error of the *first* candidate that fails
/// (candidates are all-or-nothing: a loop the scheduler cannot handle at
/// factor 1 is rejected outright).
pub fn select_unrolling(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    options: ScheduleOptions,
    mut prepare: impl FnMut(&mut LoopKernel),
) -> Result<SelectiveUnroll, ScheduleError> {
    let mut best: Option<SelectiveUnroll> = None;
    let mut evaluated = Vec::new();
    let ouf = optimal_unroll_factor(kernel, machine);
    for (choice, factor) in unroll_candidates(kernel, machine) {
        let mut unrolled = unroll(kernel, factor);
        prepare(&mut unrolled);
        let schedule = schedule_kernel(&unrolled, machine, options)?;
        let texec = schedule.texec(unrolled.avg_trip);
        evaluated.push((choice, factor, schedule.ii, texec));
        // within a 1% Texec tie (the estimate has no stall term), prefer
        // the OUF factor — that is where the locality is — and otherwise
        // the smaller factor
        let rank = |f: u32| (f == ouf, std::cmp::Reverse(f));
        let better = match &best {
            None => true,
            Some(b) => {
                let bt = b.schedule.texec(b.kernel.avg_trip);
                texec < bt * 0.99 || (texec <= bt * 1.01 && rank(factor) > rank(b.factor))
            }
        };
        if better {
            best = Some(SelectiveUnroll {
                choice,
                factor,
                kernel: unrolled,
                schedule,
                evaluated: Vec::new(),
            });
        }
    }
    let mut best = best.expect("at least the factor-1 candidate exists");
    best.evaluated = evaluated;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClusterPolicy;
    use vliw_ir::{ArrayKind, KernelBuilder};

    #[test]
    fn individual_factor_matches_paper_formula() {
        // 4 clusters x 4-byte interleave: NI = 16
        assert_eq!(individual_unroll_factor(4, 16), 4); // 4-byte stride -> x4
        assert_eq!(individual_unroll_factor(2, 16), 8); // 2-byte stride -> x8
        assert_eq!(individual_unroll_factor(1, 16), 16); // byte stride -> x16
        assert_eq!(individual_unroll_factor(8, 16), 2);
        assert_eq!(individual_unroll_factor(16, 16), 1); // already aligned
        assert_eq!(individual_unroll_factor(32, 16), 1);
        assert_eq!(individual_unroll_factor(12, 16), 4); // gcd(16,12)=4
                                                         // the gsmdec example of §4.3.4: 16-byte stride needs no unrolling
        assert_eq!(individual_unroll_factor(16, 16), 1);
    }

    #[test]
    fn ouf_is_lcm_of_eligible_ops() {
        let m = MachineConfig::word_interleaved_4();
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4096, ArrayKind::Heap);
        let (_, v) = b.load("ld4", a, 0, 4, 4); // Ui = 4
        let (_, w) = b.load("ld8", a, 1024, 8, 8); // granularity 8 > I: skipped
        let _ = b.store("st2", a, 2048, 2, 2, v); // Ui = 8
        let _ = w;
        let k = b.finish(64.0);
        assert_eq!(optimal_unroll_factor(&k, &m), 8); // lcm(4, 8)
    }

    #[test]
    fn ouf_skips_indirect_and_cold_ops() {
        let m = MachineConfig::word_interleaved_4();
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4096, ArrayKind::Heap);
        let (_, idx) = b.load("ld", a, 0, 16, 4); // aligned stride: Ui = 1
        let _ = b.load_indirect("ind", a, idx, 4); // unknown stride: skipped
        let (cold, _) = b.load("cold", a, 64, 2, 2); // would be Ui = 8…
        b.set_profile(
            cold,
            vliw_ir::MemProfile {
                hit_rate: 0.0,
                cluster_hist: vec![1, 0, 0, 0],
                latency: None,
            },
        );
        let k = b.finish(64.0); // …but hit rate 0: skipped
        assert_eq!(optimal_unroll_factor(&k, &m), 1);
    }

    #[test]
    fn candidates_deduplicate() {
        let m = MachineConfig::word_interleaved_4();
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4096, ArrayKind::Heap);
        let (_, v) = b.load("ld4", a, 0, 4, 4); // OUF = 4 = N
        b.store("st", a, 2048, 4, 4, v);
        let k = b.finish(64.0);
        let c = unroll_candidates(&k, &m);
        assert_eq!(c, vec![(UnrollChoice::None, 1), (UnrollChoice::Ouf, 4)]);
    }

    #[test]
    fn selection_prefers_lower_texec() {
        // A simple strided loop: unrolling amortizes the stage count and
        // packs more work per II, so some unrolled variant should win over
        // no-unrolling for a long-trip loop.
        let m = MachineConfig::word_interleaved_4();
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 65536, ArrayKind::Heap);
        let out = b.array("b", 65536, ArrayKind::Heap);
        let (_, v) = b.load("ld", a, 0, 4, 4);
        let (_, w) = b.int_op("add", vliw_ir::Opcode::Add, &[v.into()]);
        b.store("st", out, 0, 4, 4, w);
        let k = b.finish(1024.0);
        let r =
            select_unrolling(&k, &m, ScheduleOptions::new(ClusterPolicy::Free), |_| {}).unwrap();
        assert_eq!(r.evaluated.len(), 2); // factor 1 and OUF=4
                                          // the chosen variant has minimal Texec among candidates
        let chosen_texec = r.schedule.texec(r.kernel.avg_trip);
        let min_texec = r
            .evaluated
            .iter()
            .map(|e| e.3)
            .fold(f64::INFINITY, f64::min);
        assert!(chosen_texec <= min_texec * 1.01 + 1e-9);
    }
}
