//! Memory dependent chains (§4.3.2).
//!
//! Memory serialization is only guaranteed within a cluster, so every group
//! of memory operations connected by (possibly unresolved) memory
//! dependences — a *memory dependent chain* — must be scheduled in one
//! cluster. Chains are the connected components of the subgraph induced by
//! memory operations and memory dependence edges.

use vliw_ir::{LoopKernel, OpId};

/// The memory dependent chains of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemChains {
    chain_of: Vec<Option<usize>>,
    chains: Vec<Vec<OpId>>,
}

impl MemChains {
    /// Computes the chains of `kernel` (union-find over memory edges).
    /// Every memory operation belongs to exactly one chain; an unchained
    /// memory op forms a singleton chain.
    pub fn build(kernel: &LoopKernel) -> Self {
        let n = kernel.ops.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for e in kernel.edges.iter().filter(|e| e.kind.is_memory()) {
            let (a, b) = (
                find(&mut parent, e.from.index()),
                find(&mut parent, e.to.index()),
            );
            if a != b {
                parent[a] = b;
            }
        }
        let mut chain_of = vec![None; n];
        let mut chains: Vec<Vec<OpId>> = Vec::new();
        let mut root_to_chain: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for op in &kernel.ops {
            if !op.is_mem() {
                continue;
            }
            let root = find(&mut parent, op.id.index());
            let cid = *root_to_chain.entry(root).or_insert_with(|| {
                chains.push(Vec::new());
                chains.len() - 1
            });
            chain_of[op.id.index()] = Some(cid);
            chains[cid].push(op.id);
        }
        MemChains { chain_of, chains }
    }

    /// The chain containing `op`, if `op` is a memory operation.
    pub fn chain_id(&self, op: OpId) -> Option<usize> {
        self.chain_of[op.index()]
    }

    /// Members of chain `id`, in program order.
    pub fn members(&self, id: usize) -> &[OpId] {
        &self.chains[id]
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Whether there are no memory operations at all.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterator over `(chain id, members)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[OpId])> + '_ {
        self.chains
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.as_slice()))
    }

    /// The chain's *average preferred cluster* (§4.3.2): each member votes
    /// for its own preferred cluster; the cluster with the most votes wins
    /// (ties resolve to the lowest-numbered cluster). With this rule the
    /// paper's Figure 3 chain {n1, n2, n4} — preferences {1, 1, 2} — lands
    /// in cluster 1. `None` when no member has profile data.
    pub fn preferred_cluster(
        &self,
        id: usize,
        kernel: &LoopKernel,
        n_clusters: usize,
    ) -> Option<usize> {
        let mut votes = vec![0u64; n_clusters];
        let mut any = false;
        for &op in self.members(id) {
            if let Some(pref) = kernel
                .op(op)
                .mem
                .as_ref()
                .and_then(|m| m.preferred_cluster())
            {
                if pref < n_clusters {
                    any = true;
                    votes[pref] += 1;
                }
            }
        }
        if !any {
            return None;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }

    /// Whether chain `id` has more than one member (singleton chains impose
    /// no constraint beyond the op's own placement).
    pub fn is_constrained(&self, id: usize) -> bool {
        self.chains[id].len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{ArrayKind, DepKind, KernelBuilder, MemProfile};

    #[test]
    fn unchained_mem_ops_are_singletons() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (_, v) = b.load("ld1", a, 0, 4, 4);
        let _ = b.load("ld2", a, 256, 4, 4);
        b.store("st", a, 512, 4, 4, v);
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|(_, m)| m.len() == 1));
        assert!(!c.is_constrained(0));
    }

    #[test]
    fn mem_edges_merge_chains() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld1, v) = b.load("ld1", a, 0, 4, 4);
        let (ld2, _) = b.load("ld2", a, 256, 4, 4);
        let (st, _) = b.store("st", a, 512, 4, 4, v);
        b.mem_dep(ld1, st, DepKind::MemAnti, 0);
        b.mem_dep(st, ld1, DepKind::MemFlow, 1);
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        assert_eq!(c.len(), 2);
        assert_eq!(c.chain_id(ld1), c.chain_id(st));
        assert_ne!(c.chain_id(ld1), c.chain_id(ld2));
        let chained = c.chain_id(ld1).unwrap();
        assert!(c.is_constrained(chained));
        assert_eq!(c.members(chained).len(), 2);
    }

    #[test]
    fn non_mem_ops_have_no_chain() {
        let mut b = KernelBuilder::new("t");
        let (add, _) = b.int_op("add", vliw_ir::Opcode::Add, &[]);
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        assert!(c.is_empty());
        assert_eq!(c.chain_id(add), None);
    }

    #[test]
    fn average_preferred_cluster_sums_histograms() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld1, v) = b.load("ld1", a, 0, 4, 4);
        let (ld2, _) = b.load("ld2", a, 4, 4, 4);
        let (st, _) = b.store("st", a, 512, 4, 4, v);
        b.mem_dep(ld1, st, DepKind::MemAnti, 0);
        b.mem_dep(ld2, st, DepKind::MemAnti, 0);
        // two members prefer cluster 0, one prefers cluster 1
        b.set_profile(ld1, MemProfile::concentrated(1.0, 0, 4));
        b.set_profile(ld2, MemProfile::concentrated(1.0, 0, 4));
        b.set_profile(st, MemProfile::concentrated(1.0, 1, 4));
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        let id = c.chain_id(ld1).unwrap();
        assert_eq!(c.members(id).len(), 3);
        assert_eq!(c.preferred_cluster(id, &k, 4), Some(0));
    }

    #[test]
    fn preferred_cluster_none_without_profiles() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let (ld, _) = b.load("ld", a, 0, 4, 4);
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        assert_eq!(c.preferred_cluster(c.chain_id(ld).unwrap(), &k, 4), None);
    }

    #[test]
    fn transitive_chaining() {
        // a chain of 4 ops linked pairwise collapses to one chain
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 1024, ArrayKind::Global);
        let mut ids = Vec::new();
        let mut prev_val = None;
        for i in 0..4 {
            let (id, v) = b.load(format!("ld{i}"), a, 4 * i, 4, 4);
            if let Some(p) = ids.last().copied() {
                b.mem_dep(p, id, DepKind::MemOut, 0);
            }
            ids.push(id);
            prev_val = Some(v);
        }
        let _ = prev_val;
        let k = b.finish(1.0);
        let c = MemChains::build(&k);
        assert_eq!(c.len(), 1);
        assert_eq!(c.members(0).len(), 4);
    }
}
