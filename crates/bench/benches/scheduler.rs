//! Microbenches of the scheduler itself: full modulo scheduling of an
//! OUF-unrolled kernel, per cluster-assignment policy.

use std::hint::black_box;

use vliw_bench::{harness::Bench, micro_context};
use vliw_ir::unroll;
use vliw_machine::MachineConfig;
use vliw_sched::{schedule_kernel, ClusterPolicy, ScheduleOptions};
use vliw_workloads::{profile_kernel, spec_by_name, synthesize, ArrayLayout};

fn prepared_kernel() -> (vliw_ir::LoopKernel, MachineConfig) {
    let ctx = micro_context("gsmdec");
    let spec = spec_by_name("gsmdec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let mut k = unroll(&model.loops[0].kernel, 8);
    let layout = ArrayLayout::new(&k, &ctx.machine, true, ctx.workloads.profile_input);
    profile_kernel(&mut k, &ctx.machine, &layout, &ctx.profile);
    (k, ctx.machine)
}

fn main() {
    let (kernel, machine) = prepared_kernel();
    let mut b = Bench::new("scheduler").min_iters(20);
    for (name, policy) in [
        ("base", ClusterPolicy::Free),
        ("ibc", ClusterPolicy::BuildChains),
        ("ipbc", ClusterPolicy::PreBuildChains),
    ] {
        b.run(name, || {
            black_box(
                schedule_kernel(
                    black_box(&kernel),
                    black_box(&machine),
                    ScheduleOptions::new(policy),
                )
                .unwrap(),
            )
        });
    }
    b.finish();
}
