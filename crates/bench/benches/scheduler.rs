//! Microbenches of the scheduler itself: latency assignment, ordering and
//! full modulo scheduling of an OUF-unrolled kernel, per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_bench::micro_context;
use vliw_ir::unroll;
use vliw_machine::MachineConfig;
use vliw_sched::{schedule_kernel, ClusterPolicy, ScheduleOptions};
use vliw_workloads::{profile_kernel, spec_by_name, synthesize, ArrayLayout};

fn prepared_kernel() -> (vliw_ir::LoopKernel, MachineConfig) {
    let ctx = micro_context("gsmdec");
    let spec = spec_by_name("gsmdec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let mut k = unroll(&model.loops[0].kernel, 8);
    let layout = ArrayLayout::new(&k, &ctx.machine, true, ctx.workloads.profile_input);
    profile_kernel(&mut k, &ctx.machine, &layout, &ctx.profile);
    (k, ctx.machine)
}

fn bench(c: &mut Criterion) {
    let (kernel, machine) = prepared_kernel();
    for (name, policy) in [
        ("schedule/base", ClusterPolicy::Free),
        ("schedule/ibc", ClusterPolicy::BuildChains),
        ("schedule/ipbc", ClusterPolicy::PreBuildChains),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    schedule_kernel(
                        black_box(&kernel),
                        black_box(&machine),
                        ScheduleOptions::new(policy),
                    )
                    .unwrap(),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
