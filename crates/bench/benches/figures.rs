//! Bench: regenerate the paper's figures on a reduced context, each one
//! routed through its `RunGrid` (parallel, schedule-memoized).

use std::hint::black_box;

use vliw_bench::{bench_context, harness::Bench};
use vliw_experiments::{fig4, fig5, fig6, fig7, fig8, tables};

fn main() {
    let ctx = bench_context();
    let mut b = Bench::new("figures").min_iters(5);
    b.run("fig4", || black_box(fig4::fig4(black_box(&ctx))));
    b.run("fig5", || black_box(fig5::fig5(black_box(&ctx))));
    b.run("fig6", || black_box(fig6::fig6(black_box(&ctx))));
    b.run("fig7", || black_box(fig7::fig7(black_box(&ctx))));
    b.run("fig8", || black_box(fig8::fig8(black_box(&ctx))));
    b.run("table1", || black_box(tables::table1(black_box(&ctx))));
    b.finish();
}
