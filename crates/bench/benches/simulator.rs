//! Microbenches of the cache models and the execution engine.

use std::hint::black_box;

use vliw_bench::harness::Bench;
use vliw_machine::MachineConfig;
use vliw_mem::{build_cache, AccessRequest, DataCache, InterleavedCache};

fn main() {
    let mut b = Bench::new("simulator").min_iters(20);
    // raw interleaved-cache access throughput
    let machine = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
    b.run("interleaved_10k_accesses", || {
        let mut cache = InterleavedCache::new(&machine);
        let mut now = 0;
        for i in 0..10_000u64 {
            now += 2;
            let req = AccessRequest::load((i % 4) as usize, (i * 4) % 16384, 4, now);
            black_box(cache.access(req));
        }
        black_box(cache.stats().total())
    });
    // the three organizations, same stream
    for arch in ["interleaved", "multivliw", "unified"] {
        let m = match arch {
            "interleaved" => machine.clone(),
            "multivliw" => MachineConfig::multi_vliw_4(),
            _ => MachineConfig::unified_4(1),
        };
        b.run(&format!("{arch}_stream"), || {
            let mut cache = build_cache(&m);
            let mut now = 0;
            for i in 0..4096u64 {
                now += 2;
                black_box(cache.access(AccessRequest::load(
                    (i % 4) as usize,
                    (i * 8) % 8192,
                    4,
                    now,
                )));
            }
        });
    }
    b.finish();
}
