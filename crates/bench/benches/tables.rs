//! Criterion bench: regenerate Tables 1 and 2.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_bench::bench_context;
use vliw_experiments::tables::{table1, table2};

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    c.bench_function("table1", |b| b.iter(|| black_box(table1(black_box(&ctx)))));
    c.bench_function("table2", |b| b.iter(|| black_box(table2(black_box(&ctx)))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
