//! Criterion bench: regenerate the paper's fig7 on a reduced context.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_bench::bench_context;
use vliw_experiments::fig7::fig7;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    c.bench_function("fig7", |b| b.iter(|| black_box(fig7(black_box(&ctx)))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
