//! Scheduling-throughput bench: modulo-schedules every loop of the full
//! workload suite under all four cluster-assignment policies and reports
//! schedules/sec plus trial-cycles/sec (candidate `(cluster, cycle)` slots
//! examined per second — the scheduler's innermost unit of work).
//!
//! This is the tracked perf trajectory for the scheduler core: the `sched`
//! target of the `repro` binary records the same counters (via the shared
//! [`vliw_bench::sched_pass`]) into `BENCH_repro.json`.

use vliw_bench::{harness::Bench, sched_pass, sched_workload};
use vliw_sched::{ClusterPolicy, SchedStats};

fn main() {
    let (kernels, machine) = sched_workload();
    println!(
        "sched workload: {} kernels (suite loops at factor 1 and OUF-unrolled)",
        kernels.len()
    );
    let mut b = Bench::new("sched").min_iters(5);
    let mut total_schedules = 0u64;
    let mut total_seconds = 0.0f64;
    for policy in ClusterPolicy::ALL {
        let name = policy.assigner().name();
        let mut stats = SchedStats::default();
        let r = b.run(name, || {
            let (st, _) = sched_pass(&kernels, &machine, policy);
            stats = st;
        });
        let secs = r.median.as_secs_f64();
        println!(
            "bench sched/{name}: {:.1} schedules/sec, {:.3e} trial-cycles/sec ({} trial cycles, {} rollbacks)",
            kernels.len() as f64 / secs,
            stats.trial_cycles as f64 / secs,
            stats.trial_cycles,
            stats.rollbacks,
        );
        total_schedules += kernels.len() as u64;
        total_seconds += secs;
    }
    println!(
        "bench sched/all-policies: {:.1} schedules/sec overall",
        total_schedules as f64 / total_seconds
    );
    b.finish();
}
