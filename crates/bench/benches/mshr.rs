//! High-contention stress of the in-flight request tracking (MSHR)
//! subsystem: every cluster hammers the same few subblocks of one home
//! module at back-to-back cycles, so almost every access either combines
//! with an in-flight transaction or waits for a free miss-status register.

use std::hint::black_box;

use vliw_bench::harness::Bench;
use vliw_machine::MachineConfig;
use vliw_mem::{AccessRequest, DataCache, InterleavedCache};

/// One pass of the contended stream: `accesses` requests, all targeting
/// eight blocks homed on cluster 0, issued round-robin by all clusters one
/// cycle apart (with a sprinkle of stores to exercise the attraction
/// invalidation path).
fn hammer(machine: &MachineConfig, accesses: u64) -> u64 {
    let mut cache = InterleavedCache::new(machine);
    let mut now = 0;
    for i in 0..accesses {
        now += 1;
        let cluster = (i % 4) as usize;
        let addr = (i % 8) * 32; // blocks 0..8, every word homed per-cluster
        if i % 97 == 0 {
            black_box(cache.access(AccessRequest::store(cluster, addr, 4, now)));
        } else {
            black_box(cache.access(AccessRequest::load(cluster, addr, 4, now)));
        }
    }
    cache.stats().mshr().fills + cache.stats().mshr().merged_waiters
}

fn main() {
    let mut b = Bench::new("mshr").min_iters(20);
    let roomy = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
    let tight = roomy.clone().with_mshrs(1);
    let r = b.run("contended_20k_default_mshrs", || hammer(&roomy, 20_000));
    assert!(r.iters > 0);
    b.run("contended_20k_single_mshr", || hammer(&tight, 20_000));
    b.finish();
}
