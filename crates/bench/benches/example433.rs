//! Criterion bench: the §4.3.3 worked example (latency assignment on the
//! Figure 3 DDG).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vliw_experiments::example433::example433;

fn bench(c: &mut Criterion) {
    c.bench_function("example433", |b| b.iter(|| black_box(example433())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
