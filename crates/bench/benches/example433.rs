//! Bench: the §4.3.3 worked example (latency assignment on the Figure 3
//! DDG).

use std::hint::black_box;

use vliw_bench::harness::Bench;
use vliw_experiments::example433::example433;

fn main() {
    let mut b = Bench::new("example433").min_iters(20);
    b.run("example433", || black_box(example433()));
    b.finish();
}
