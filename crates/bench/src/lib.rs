//! Shared plumbing for the bench targets and the `repro` binary.
//!
//! The bench targets use the dependency-free [`harness`] (the container
//! this workspace builds in has no registry access, so Criterion is out of
//! reach); each target regenerates one artifact of the paper on a reduced
//! context. The full 14-benchmark sweep lives in the `repro` binary —
//! run `cargo run --release -p vliw-bench --bin repro full all`.

pub mod harness;

use std::time::{Duration, Instant};

use vliw_experiments::ExperimentContext;
use vliw_ir::LoopKernel;
use vliw_machine::MachineConfig;
use vliw_sched::{schedule_kernel_with_stats, ClusterPolicy, SchedStats, ScheduleOptions};
use vliw_workloads::{profile_kernel, ArrayLayout};

/// A deliberately small context for the benches: two benchmarks, short
/// simulations — large enough to exercise every pipeline stage, small
/// enough to repeat.
pub fn bench_context() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "jpegenc".into()];
    ctx.sim.iteration_cap = 64;
    ctx.sim.warmup_iterations = 64;
    ctx.profile.iteration_cap = 64;
    ctx
}

/// A single-benchmark context for the microbenches.
pub fn micro_context(bench: &str) -> ExperimentContext {
    let mut ctx = bench_context();
    ctx.benchmarks = vec![bench.into()];
    ctx
}

/// The scheduling-throughput workload over the full 14-benchmark suite —
/// the population the `sched` bench measures.
pub fn sched_workload() -> (Vec<LoopKernel>, MachineConfig) {
    sched_workload_for(&ExperimentContext::full())
}

/// The scheduling-throughput workload for one context: every loop of the
/// context's benchmarks, profiled, at factor 1 plus an OUF-unrolled
/// variant when the OUF exceeds 1. Kernels any policy fails to schedule
/// are dropped so every policy measures the same population (the
/// `repro … sched` target shares this builder).
pub fn sched_workload_for(ctx: &ExperimentContext) -> (Vec<LoopKernel>, MachineConfig) {
    let mut profile = ctx.profile;
    profile.iteration_cap = 64;
    let mut kernels = Vec::new();
    for model in ctx.models() {
        for lw in &model.loops {
            let ouf = vliw_sched::optimal_unroll_factor(&lw.kernel, &ctx.machine);
            let mut factors = vec![1u32];
            if ouf > 1 {
                factors.push(ouf);
            }
            for f in factors {
                let mut k = vliw_ir::unroll(&lw.kernel, f);
                let layout = ArrayLayout::new(&k, &ctx.machine, true, ctx.workloads.profile_input);
                profile_kernel(&mut k, &ctx.machine, &layout, &profile);
                // deep unrolling can defeat the no-backtracking scheduler
                // under pinned-chain policies; keep only kernels every
                // policy can schedule so each bench case runs the same set
                let all_schedulable = ClusterPolicy::ALL.iter().all(|&p| {
                    vliw_sched::schedule_kernel(&k, &ctx.machine, ScheduleOptions::new(p)).is_ok()
                });
                if all_schedulable {
                    kernels.push(k);
                }
            }
        }
    }
    (kernels, ctx.machine.clone())
}

/// One timed scheduling pass: every workload kernel under `policy`, with
/// the work counters summed. Shared by `benches/sched.rs` and the
/// `repro … sched` target so the bench printout and the tracked
/// `BENCH_repro.json` trajectory measure exactly the same thing.
///
/// # Panics
///
/// Panics if a kernel fails to schedule — the workload is pre-filtered to
/// kernels every policy can schedule, so a failure is a scheduler bug.
pub fn sched_pass(
    kernels: &[LoopKernel],
    machine: &MachineConfig,
    policy: ClusterPolicy,
) -> (SchedStats, Duration) {
    let mut stats = SchedStats::default();
    let t = Instant::now();
    for k in kernels {
        let (s, st) = schedule_kernel_with_stats(
            std::hint::black_box(k),
            std::hint::black_box(machine),
            ScheduleOptions::new(policy),
        )
        .expect("workload kernels are pre-filtered to schedule");
        std::hint::black_box(&s);
        stats.merge(&st);
    }
    (stats, t.elapsed())
}
