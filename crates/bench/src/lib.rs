//! Shared plumbing for the bench targets and the `repro` binary.
//!
//! The bench targets use the dependency-free [`harness`] (the container
//! this workspace builds in has no registry access, so Criterion is out of
//! reach); each target regenerates one artifact of the paper on a reduced
//! context. The full 14-benchmark sweep lives in the `repro` binary —
//! run `cargo run --release -p vliw-bench --bin repro full all`.

pub mod harness;

use vliw_experiments::ExperimentContext;

/// A deliberately small context for the benches: two benchmarks, short
/// simulations — large enough to exercise every pipeline stage, small
/// enough to repeat.
pub fn bench_context() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "jpegenc".into()];
    ctx.sim.iteration_cap = 64;
    ctx.sim.warmup_iterations = 64;
    ctx.profile.iteration_cap = 64;
    ctx
}

/// A single-benchmark context for the microbenches.
pub fn micro_context(bench: &str) -> ExperimentContext {
    let mut ctx = bench_context();
    ctx.benchmarks = vec![bench.into()];
    ctx
}
