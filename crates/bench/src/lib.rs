//! Shared plumbing for the Criterion benches and the `repro` binary.
//!
//! Each bench target regenerates one table or figure of the paper on a
//! reduced context (Criterion repeats the measurement, so the full
//! 14-benchmark sweep lives in the `repro` binary instead — run
//! `cargo run --release -p vliw-bench --bin repro full all`).

use vliw_experiments::ExperimentContext;

/// A deliberately small context for Criterion: two benchmarks, short
/// simulations — large enough to exercise every pipeline stage, small
/// enough to repeat.
pub fn bench_context() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "jpegenc".into()];
    ctx.sim.iteration_cap = 64;
    ctx.sim.warmup_iterations = 64;
    ctx.profile.iteration_cap = 64;
    ctx
}

/// A single-benchmark context for the microbenches.
pub fn micro_context(bench: &str) -> ExperimentContext {
    let mut ctx = bench_context();
    ctx.benchmarks = vec![bench.into()];
    ctx
}
