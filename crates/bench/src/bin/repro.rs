//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro [quick|full] [--serial] [table1|table2|example433|fig4|fig5|fig6|fig7|fig8|hints|chains|interleave|mshr|sched|optgap|smt|profile|batch|trace|all]`
//!
//! Results print to stdout and are also written as CSV under `results/`.
//! Every run additionally emits `BENCH_repro.json` — a machine-readable
//! record of per-figure wall time and headline cycle metrics, so the perf
//! trajectory of the full pipeline can be tracked across commits.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

use vliw_experiments::{
    batch, chains_exp, example433, faults, fig4, fig5, fig6, fig7, fig8, hints_exp,
    interleave_study, optgap, profile_fidelity, report, smt, tables, trace_exp, ExperimentContext,
    RunConfig, RunGrid, ScheduleMemo, UnrollMode,
};
use vliw_sched::{ClusterPolicy, SchedBackend, SchedStats};

/// The scheduler-throughput record: schedules the suite under every policy
/// (wall time + work counters from [`SchedStats`]) and probes the schedule
/// memo, returning `BENCH_repro.json` metrics and a CSV table.
fn sched_record(ctx: &ExperimentContext) -> (Vec<(String, f64)>, String) {
    let (kernels, machine) = vliw_bench::sched_workload_for(ctx);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut csv = String::from("policy,kernels,seconds,schedules_per_sec,trial_cycles\n");
    let mut total = SchedStats::default();
    let mut total_secs = 0.0;
    let mut total_schedules = 0u64;
    for policy in ClusterPolicy::ALL {
        let label = policy.assigner().name();
        let (stats, elapsed) = vliw_bench::sched_pass(&kernels, &machine, policy);
        let secs = elapsed.as_secs_f64();
        let per_sec = kernels.len() as f64 / secs;
        println!(
            "sched {label}: {} kernels in {secs:.3}s = {per_sec:.1} schedules/sec, \
             {} trial cycles",
            kernels.len(),
            stats.trial_cycles
        );
        let _ = writeln!(
            csv,
            "{label},{},{secs},{per_sec},{}",
            kernels.len(),
            stats.trial_cycles
        );
        metrics.push((format!("schedules_per_sec/{label}"), per_sec));
        metrics.push((format!("trial_cycles/{label}"), stats.trial_cycles as f64));
        total.merge(&stats);
        total_secs += secs;
        total_schedules += kernels.len() as u64;
    }
    metrics.push(("schedules".into(), total_schedules as f64));
    metrics.push((
        "schedules_per_sec".into(),
        total_schedules as f64 / total_secs,
    ));
    metrics.push(("trial_cycles".into(), total.trial_cycles as f64));
    metrics.push((
        "trial_cycles_per_sec".into(),
        total.trial_cycles as f64 / total_secs,
    ));
    metrics.push(("attempts".into(), total.attempts as f64));
    metrics.push(("rollbacks".into(), total.rollbacks as f64));
    metrics.push(("placements".into(), total.placements as f64));
    metrics.push(("cutoffs".into(), total.cutoffs as f64));
    metrics.push(("fallback_retries".into(), total.fallback_retries as f64));

    // memo probe: two configs differing only in a non-preparation axis
    // share every preparation, so the second sweep is all memo hits
    let memo = ScheduleMemo::new();
    let base = RunConfig {
        unroll: UnrollMode::NoUnroll,
        ..RunConfig::ipbc()
    };
    for cfg in [base, base.with_buffers()] {
        let machine = ctx.machine_for(&cfg);
        for model in ctx.models() {
            for lw in &model.loops {
                let _ = memo.prepare(&lw.kernel, &machine, &cfg, ctx);
            }
        }
    }
    println!("sched memo: {} prepared, {} hits", memo.len(), memo.hits());
    metrics.push(("memo_prepared".into(), memo.len() as f64));
    metrics.push(("memo_hits".into(), memo.hits() as f64));
    (metrics, csv)
}

fn save(name: &str, csv: String) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[saved results/{name}.csv]");
        }
    }
}

/// One figure's machine-readable record.
struct FigureRecord {
    name: &'static str,
    wall_seconds: f64,
    metrics: Vec<(String, f64)>,
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_bench_json(scale: &str, n_benchmarks: usize, serial: bool, figures: &[FigureRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"vliw-bench-repro/1\",");
    let _ = writeln!(out, "  \"scale\": \"{}\",", json_escape(scale));
    let _ = writeln!(out, "  \"benchmarks\": {n_benchmarks},");
    let _ = writeln!(out, "  \"serial\": {serial},");
    let total: f64 = figures.iter().map(|f| f.wall_seconds).sum();
    let _ = writeln!(out, "  \"total_wall_seconds\": {},", json_number(total));
    out.push_str("  \"figures\": {\n");
    for (i, f) in figures.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", json_escape(f.name));
        let _ = write!(
            out,
            "      \"wall_seconds\": {}",
            json_number(f.wall_seconds)
        );
        if f.metrics.is_empty() {
            out.push('\n');
        } else {
            out.push_str(",\n      \"metrics\": {\n");
            for (j, (k, v)) in f.metrics.iter().enumerate() {
                let comma = if j + 1 < f.metrics.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "        \"{}\": {}{comma}",
                    json_escape(k),
                    json_number(*v)
                );
            }
            out.push_str("      }\n");
        }
        let comma = if i + 1 < figures.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  }\n}\n");
    let path = "BENCH_repro.json";
    if let Err(e) = fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("[saved {path}]");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "full";
    let mut serial = false;
    let mut targets: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "quick" | "full" => scale = a,
            "--serial" => serial = true,
            other => targets.push(other),
        }
    }
    if targets.is_empty() {
        targets.push("all");
    }
    const KNOWN: [&str; 20] = [
        "all",
        "batch",
        "faults",
        "trace",
        "table1",
        "table2",
        "example433",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "hints",
        "chains",
        "interleave",
        "mshr",
        "sched",
        "optgap",
        "smt",
        "profile",
    ];
    if let Some(bad) = targets.iter().find(|t| !KNOWN.contains(t)) {
        eprintln!(
            "error: unknown target '{bad}' (expected one of: {})",
            KNOWN.join(", ")
        );
        std::process::exit(2);
    }
    if serial {
        // the figure drivers consult this to pick serial grid execution;
        // used by the determinism check in CI
        std::env::set_var("VLIW_GRID_SERIAL", "1");
    }
    let ctx = if scale == "quick" {
        ExperimentContext::quick()
    } else {
        ExperimentContext::full()
    };
    println!("# scale: {scale} ({} benchmarks)\n", ctx.benchmarks.len());

    let want = |t: &str| targets.contains(&"all") || targets.contains(&t);
    let mut records: Vec<FigureRecord> = Vec::new();
    let mut record = |name: &'static str, started: Instant, metrics: Vec<(String, f64)>| {
        records.push(FigureRecord {
            name,
            wall_seconds: started.elapsed().as_secs_f64(),
            metrics,
        });
    };

    if want("table1") {
        let t0 = Instant::now();
        let t = tables::table1(&ctx);
        println!("{t}");
        save("table1", t.table().to_csv());
        record("table1", t0, Vec::new());
    }
    if want("table2") {
        let t0 = Instant::now();
        let t = tables::table2(&ctx);
        println!("{t}");
        save("table2", t.table().to_csv());
        record("table2", t0, Vec::new());
    }
    if want("example433") {
        let t0 = Instant::now();
        let e = example433::example433();
        println!("{e}");
        save("example433", e.table().to_csv());
        record("example433", t0, Vec::new());
    }
    if want("fig4") {
        let t0 = Instant::now();
        let f = fig4::fig4(&ctx);
        println!("{f}");
        save("fig4", f.table().to_csv());
        let mut m = vec![
            ("alignment_gain".into(), f.alignment_gain()),
            ("unrolling_gain".into(), f.unrolling_gain()),
        ];
        for (b, label) in fig4::BAR_LABELS.iter().enumerate() {
            m.push((format!("local_hit_amean/{label}"), f.amean[b][0]));
        }
        record("fig4", t0, m);
    }
    if want("fig5") {
        let t0 = Instant::now();
        let f = fig5::fig5(&ctx);
        println!("{f}");
        save("fig5", f.table().to_csv());
        let mut m = Vec::new();
        for r in &f.rows {
            m.push((format!("stall_ibc/{}", r.bench), r.stall.0));
            m.push((format!("stall_ipbc/{}", r.bench), r.stall.1));
        }
        record("fig5", t0, m);
    }
    if want("fig6") {
        let t0 = Instant::now();
        let f = fig6::fig6(&ctx);
        println!("{f}");
        save("fig6", f.table().to_csv());
        record(
            "fig6",
            t0,
            vec![
                ("remote_hit_share_ibc".into(), f.remote_hit_share(0)),
                ("remote_hit_share_ipbc".into(), f.remote_hit_share(2)),
                ("ab_reduction_ibc".into(), f.ab_reduction(0)),
                ("ab_reduction_ipbc".into(), f.ab_reduction(2)),
            ],
        );
    }
    if want("fig7") {
        let t0 = Instant::now();
        let f = fig7::fig7(&ctx);
        println!("{f}");
        save("fig7", f.table().to_csv());
        let m = fig7::CONFIG_LABELS
            .iter()
            .enumerate()
            .map(|(i, label)| (format!("wb_amean/{label}"), f.amean[i]))
            .collect();
        record("fig7", t0, m);
    }
    if want("fig8") {
        let t0 = Instant::now();
        let f = fig8::fig8(&ctx);
        println!("{f}");
        save("fig8", f.table().to_csv());
        let mut m = vec![
            ("ipbc_vs_unified5".into(), f.speedup(0, 3)),
            ("ibc_vs_unified5".into(), f.speedup(1, 3)),
            ("ipbc_vs_multivliw".into(), f.vs_multivliw()),
        ];
        for r in &f.rows {
            m.push((format!("unified1_cycles/{}", r.bench), r.unified1_cycles));
            for (i, label) in fig8::BAR_LABELS.iter().enumerate() {
                m.push((
                    format!("cycles/{}/{label}", r.bench),
                    r.bars[i].total() * r.unified1_cycles,
                ));
            }
        }
        record("fig8", t0, m);
    }
    if want("hints") {
        let t0 = Instant::now();
        let h = hints_exp::hints_experiment(&ctx);
        println!("{h}");
        save("hints", h.table().to_csv());
        let mut m = Vec::new();
        for heuristic in ["IPBC", "IBC"] {
            for entries in [8usize, 16] {
                if let Some(r) = h.reduction(heuristic, entries) {
                    m.push((format!("hint_reduction/{heuristic}/{entries}"), r));
                }
            }
        }
        record("hints", t0, m);
    }
    if want("interleave") {
        let t0 = Instant::now();
        let s = interleave_study::interleave_study(&ctx);
        println!("{s}");
        save("interleave", s.table().to_csv());
        let m = s
            .rows
            .iter()
            .map(|r| (format!("cycles/{}/{}B", r.bench, r.interleave), r.cycles))
            .collect();
        record("interleave", t0, m);
    }
    if want("mshr") {
        // in-flight request tracking summary over the Figure 6 bars, on a
        // machine with a deliberately tight MSHR budget so capacity
        // back-pressure is visible
        let t0 = Instant::now();
        let mut mshr_ctx = ctx.clone();
        mshr_ctx.machine = mshr_ctx.machine.clone().with_mshrs(2);
        let res = fig6::fig6_grid().run(&mshr_ctx);
        let t = report::mshr_table(&res);
        print!("{}", t.render());
        save("mshr", t.to_csv());
        let mix = res.mshr_by_config();
        let mut m = Vec::new();
        for (c, (label, _)) in res.configs().iter().enumerate() {
            m.push((format!("fills/{label}"), mix[c][0]));
            m.push((format!("merged/{label}"), mix[c][1]));
            m.push((format!("full_stall/{label}"), mix[c][2]));
            m.push((
                format!("peak_occupancy/{label}"),
                res.mshr_peak_by_config(c) as f64,
            ));
        }
        record("mshr", t0, m);
    }
    if want("sched") {
        // scheduler-throughput record: modulo-schedule the whole workload
        // suite under every policy, plus a memo-effectiveness probe — the
        // tracked perf trajectory of the scheduler core
        let t0 = Instant::now();
        let (s, csv) = sched_record(&ctx);
        save("sched", csv);
        record("sched", t0, s);
    }
    if want("optgap") {
        // optimality-gap study: heuristic II vs the exact branch-and-bound
        // backend under the same front-end, per policy, with cutoffs as a
        // first-class column
        let t0 = Instant::now();
        let g = optgap::optgap(&ctx);
        println!("{g}");
        save("optgap", g.table().to_csv());
        let mut m = vec![
            ("kernels".into(), g.n_kernels as f64),
            ("node_budget".into(), g.node_budget as f64),
            // the adaptive-budget policy in force: base budget scaled by
            // ops × II range (tracked so budget-policy changes show up
            // next to the proven-optimal fraction they move)
            (
                "adaptive_budget".into(),
                f64::from(vliw_sched::ScheduleOptions::new(ClusterPolicy::Free).adaptive_budget),
            ),
            ("proven_optimal_fraction".into(), g.proven_fraction()),
        ];
        for r in &g.rows {
            let key = format!("{}/{}", r.policy, r.backend);
            m.push((format!("ii_ratio/{key}"), r.mean_ratio));
            m.push((format!("proven_fraction/{key}"), r.proven_fraction()));
            m.push((format!("matched/{key}"), r.matched as f64));
            m.push((format!("better/{key}"), r.better as f64));
            m.push((format!("cutoff/{key}"), r.cutoff as f64));
            m.push((format!("cutoff_iis/{key}"), r.cutoff_iis as f64));
            m.push((format!("max_live/{key}"), r.mean_max_live));
        }
        // the backend axis end-to-end through the grid: one benchmark,
        // both backends, with the per-config quality summary rendered
        let base = RunConfig {
            unroll: UnrollMode::NoUnroll,
            ..RunConfig::ipbc()
        };
        let bench = ctx
            .benchmarks
            .first()
            .map(String::as_str)
            .unwrap_or("gsmdec");
        let res = RunGrid::new("backend-quality")
            .benchmarks(&[bench])
            .config("IPBC/swing", base)
            .config("IPBC/bnb", base.with_backend(SchedBackend::ExactBnB))
            .run(&ctx);
        let qt = report::backend_quality_table(&res);
        print!("{}", qt.render());
        save("backend_quality", qt.to_csv());
        let q = res.quality_by_config();
        m.push(("grid_proven/bnb".into(), q[1][1] as f64));
        m.push(("grid_cutoff/bnb".into(), q[1][2] as f64));
        record("optgap", t0, m);
    }
    if want("smt") {
        // SMT-LIB export: the factor-1 scheduling problems restated as
        // QF_LIA scripts at their MIIs, one file per kernel, for external
        // solvers to referee independently of the in-tree exact backend
        let t0 = Instant::now();
        let dir = Path::new("results").join("smt");
        match smt::export_suite(&ctx, &dir) {
            Ok(e) => {
                println!(
                    "smt: {} kernels -> {} files ({} bytes) under {}\n",
                    e.n_kernels,
                    e.files.len(),
                    e.bytes,
                    dir.display()
                );
                record(
                    "smt",
                    t0,
                    vec![
                        ("kernels".into(), e.n_kernels as f64),
                        ("files".into(), e.files.len() as f64),
                        ("bytes".into(), e.bytes as f64),
                    ],
                );
            }
            Err(e) => eprintln!("warning: smt export failed: {e}"),
        }
    }
    if want("profile") {
        // the measured-profile subsystem end to end: collect profiles
        // from the timing simulator, persist the versioned store, report
        // synthetic-vs-measured divergence and per-policy cycle deltas,
        // and run the delay-tracking backend over the measured suite
        let t0 = Instant::now();
        let p = profile_fidelity::profile_fidelity(&ctx);
        println!("{p}");
        save("profile_fidelity", p.table().to_csv());
        save("profile_divergence", p.divergence_table().to_csv());
        save("profile_percentiles", p.percentile_table().to_csv());
        let store_path = Path::new("results")
            .join("profiles")
            .join(format!("factor1-{scale}.profile"));
        match p.store.save(&store_path) {
            Ok(()) => println!("[saved {}]", store_path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", store_path.display()),
        }
        let mut m = vec![
            ("store_loops".into(), p.store.len() as f64),
            (
                "store_roundtrip_ok".into(),
                if p.roundtrip_ok { 1.0 } else { 0.0 },
            ),
            ("skipped".into(), p.skipped as f64),
            ("delay_kernels".into(), p.delay.kernels as f64),
            (
                "delay_verify_failures".into(),
                p.delay.verify_failures as f64,
            ),
            ("delay_better".into(), p.delay.better as f64),
            ("delay_skipped".into(), p.delay.skipped as f64),
            ("delay_worse".into(), p.delay.worse as f64),
            ("delay_mean_ii_ratio".into(), p.delay.mean_ii_ratio),
        ];
        for row in &p.percentiles {
            m.push((format!("cycles_delay_p{}", row.p), row.cycles));
        }
        for r in &p.divergence {
            m.push((format!("hit_delta/{}", r.bench), r.mean_hit_delta));
            m.push((format!("pref_agreement/{}", r.bench), r.pref_agreement));
            m.push((
                format!("expected_latency/{}", r.bench),
                r.mean_expected_latency,
            ));
        }
        for pd in &p.policies {
            m.push((
                format!("cycles_synthetic/{}", pd.policy),
                pd.synthetic_cycles,
            ));
            m.push((format!("cycles_measured/{}", pd.policy), pd.measured_cycles));
            m.push((format!("cycles_delay/{}", pd.policy), pd.delay_cycles));
            m.push((
                format!("measured_delta_pct/{}", pd.policy),
                pd.measured_delta_pct(),
            ));
            m.push((
                format!("delay_delta_pct/{}", pd.policy),
                pd.delay_delta_pct(),
            ));
        }
        record("profile", t0, m);
    }
    if want("batch") {
        // the scheduling-as-a-service study: drain a replicated suite
        // queue through the sharded schedule cache cold, warm and from
        // the round-tripped on-disk store, with work-stealing workers
        let t0 = Instant::now();
        let mut opts = if scale == "quick" {
            batch::BatchOptions::quick()
        } else {
            batch::BatchOptions::full()
        };
        if serial {
            opts.workers = 1;
        }
        let b = batch::run_batch(&ctx, &opts);
        print!("{b}");
        let ht = report::shard_health_table(&b);
        print!("{}", ht.render());
        save("batch_shards", b.shard_csv());
        save("batch_health", ht.to_csv());
        record("batch", t0, b.metrics());
    }
    if want("trace") {
        // the instrumented pass: a deterministic logical-clock recording
        // of the whole service (cache lifecycle, prepare stages, backends,
        // batch worker, simulation windows), exported as Chrome trace JSON
        // plus a flat metrics snapshot
        let t0 = Instant::now();
        let tr = trace_exp::run_trace(&ctx, 1);
        print!("{tr}");
        let dir = Path::new("results").join("trace");
        let path = dir.join(format!("trace-{scale}.json"));
        if let Err(e) = fs::create_dir_all(&dir).and_then(|()| fs::write(&path, &tr.chrome_json)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[saved {}]", path.display());
        }
        record("trace", t0, tr.metrics);
    }
    if want("faults") {
        // the fault-injection audit: seeded panics, store corruption, an
        // interrupted export and budget starvation against the batch
        // workload; every fault must land in exactly one recovery counter
        // and the drain digests must stay bit-identical
        let t0 = Instant::now();
        let mut fopts = if scale == "quick" {
            faults::FaultOptions::quick()
        } else {
            faults::FaultOptions::full()
        };
        if serial {
            fopts.workers = 1;
        }
        // keep the planned panic spew out of the run log; anything
        // unplanned still prints
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let planned = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("fault plan:"));
            if !planned {
                default_hook(info);
            }
        }));
        let fr = faults::run_faults(&ctx, &fopts);
        let _ = std::panic::take_hook();
        print!("{fr}");
        save("faults", fr.table().to_csv());
        record("faults", t0, fr.metrics());
    }
    if want("chains") {
        let t0 = Instant::now();
        let c = chains_exp::chain_breaking(&ctx, "epicdec");
        println!("{c}");
        save("chains", c.table().to_csv());
        record(
            "chains",
            t0,
            vec![
                ("compute_with".into(), c.compute.0),
                ("compute_without".into(), c.compute.1),
                ("stall_with".into(), c.stall.0),
                ("stall_without".into(), c.stall.1),
            ],
        );
    }

    write_bench_json(scale, ctx.benchmarks.len(), serial, &records);
}
