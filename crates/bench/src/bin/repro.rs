//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage: `repro [quick|full] [table1|table2|example433|fig4|fig5|fig6|fig7|fig8|hints|chains|interleave|all]`
//!
//! Results print to stdout and are also written as CSV under `results/`.

use std::fs;
use std::path::Path;

use vliw_experiments::{
    chains_exp, example433, fig4, fig5, fig6, fig7, fig8, hints_exp, interleave_study, tables,
    ExperimentContext,
};

fn save(name: &str, csv: String) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[saved results/{name}.csv]");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "full";
    let mut targets: Vec<&str> = Vec::new();
    for a in &args {
        match a.as_str() {
            "quick" | "full" => scale = a,
            other => targets.push(other),
        }
    }
    if targets.is_empty() {
        targets.push("all");
    }
    let ctx = if scale == "quick" { ExperimentContext::quick() } else { ExperimentContext::full() };
    println!("# scale: {scale} ({} benchmarks)\n", ctx.benchmarks.len());

    let want = |t: &str| targets.contains(&"all") || targets.contains(&t);

    if want("table1") {
        let t = tables::table1(&ctx);
        println!("{t}");
        save("table1", t.table().to_csv());
    }
    if want("table2") {
        let t = tables::table2(&ctx);
        println!("{t}");
        save("table2", t.table().to_csv());
    }
    if want("example433") {
        let e = example433::example433();
        println!("{e}");
        save("example433", e.table().to_csv());
    }
    if want("fig4") {
        let f = fig4::fig4(&ctx);
        println!("{f}");
        save("fig4", f.table().to_csv());
    }
    if want("fig5") {
        let f = fig5::fig5(&ctx);
        println!("{f}");
        save("fig5", f.table().to_csv());
    }
    if want("fig6") {
        let f = fig6::fig6(&ctx);
        println!("{f}");
        save("fig6", f.table().to_csv());
    }
    if want("fig7") {
        let f = fig7::fig7(&ctx);
        println!("{f}");
        save("fig7", f.table().to_csv());
    }
    if want("fig8") {
        let f = fig8::fig8(&ctx);
        println!("{f}");
        save("fig8", f.table().to_csv());
    }
    if want("hints") {
        let h = hints_exp::hints_experiment(&ctx);
        println!("{h}");
        save("hints", h.table().to_csv());
    }
    if want("interleave") {
        let s = interleave_study::interleave_study(&ctx);
        println!("{s}");
        save("interleave", s.table().to_csv());
    }
    if want("chains") {
        let c = chains_exp::chain_breaking(&ctx, "epicdec");
        println!("{c}");
        save("chains", c.table().to_csv());
    }
}
