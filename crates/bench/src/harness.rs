//! A minimal wall-clock bench harness (no external dependencies).
//!
//! Each measurement warms up, then runs enough iterations to cover a
//! target measurement window and reports min / median / mean per-iteration
//! times. Use [`Bench::run`] per case and call [`Bench::finish`] at the end
//! of `main` so the target exits non-zero on misuse (no cases run).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One bench target's runner and report accumulator.
pub struct Bench {
    target: String,
    min_iters: u32,
    measure_for: Duration,
    cases: usize,
}

/// The timing summary of one case.
#[derive(Debug, Clone, Copy)]
pub struct CaseResult {
    /// Iterations measured.
    pub iters: u32,
    /// Minimum per-iteration time.
    pub min: Duration,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Bench {
    /// A harness for the named bench target.
    pub fn new(target: &str) -> Self {
        Bench {
            target: target.to_string(),
            min_iters: 10,
            measure_for: Duration::from_millis(750),
            cases: 0,
        }
    }

    /// Lowers/raises the iteration floor (default 10).
    pub fn min_iters(mut self, iters: u32) -> Self {
        self.min_iters = iters.max(1);
        self
    }

    /// Runs one case: warmup once, then measure at least `min_iters`
    /// iterations (and at least the measurement window), and print a
    /// one-line summary. The closure's result is black-boxed so the work
    /// cannot be optimized away.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> CaseResult {
        self.cases += 1;
        black_box(f()); // warmup + lazy-init
        let mut samples: Vec<Duration> = Vec::new();
        let started = Instant::now();
        while (samples.len() as u32) < self.min_iters || started.elapsed() < self.measure_for {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
            if samples.len() >= 10_000 {
                break; // fast case: enough samples for any statistic
            }
        }
        samples.sort();
        let iters = samples.len() as u32;
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / iters;
        let result = CaseResult {
            iters,
            min,
            median,
            mean,
        };
        println!(
            "bench {}/{name}: {} iters, min {}, median {}, mean {}",
            self.target,
            iters,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        result
    }

    /// Ends the target; exits non-zero if no case ran.
    pub fn finish(self) {
        if self.cases == 0 {
            eprintln!("bench {}: no cases ran", self.target);
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut b = Bench::new("t").min_iters(3);
        b.measure_for = Duration::from_millis(1);
        let r = b.run("noop", || 1 + 1);
        assert!(r.iters >= 3);
        assert!(r.min <= r.median && r.median <= r.mean.max(r.median));
        b.finish();
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
