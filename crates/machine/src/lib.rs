//! Machine description for the clustered VLIW architectures of the paper.
//!
//! Three architecture families are described (§3 and §5.1, Table 2):
//!
//! * **Word-interleaved** ([`ArchKind::WordInterleaved`]): the L1 data cache
//!   is distributed across clusters at word granularity — the word holding
//!   byte `a` lives in the cache module of cluster `(a / I) mod N`. No data
//!   replication (tags are replicated). Optional per-cluster *Attraction
//!   Buffers* hold remote subblocks.
//! * **MultiVLIW** ([`ArchKind::MultiVliw`]): per-cluster caches kept
//!   coherent with a snoopy protocol; data replication allowed.
//! * **Unified** ([`ArchKind::Unified`]): a central multi-ported cache
//!   shared by all clusters, at an optimistic (1-cycle) or realistic
//!   (5-cycle) access latency.
//!
//! The default parameters reproduce Table 2 of the paper: 4 clusters with
//! one integer, one floating-point and one memory unit each; an 8 KB L1
//! (four 2 KB modules), 32-byte blocks, 2-way set-associative; 4 register
//! buses and 4 memory buses running at half the core frequency; a 4-port,
//! 10-cycle always-hit next memory level; and a 4-byte interleaving factor.
//!
//! # Example
//!
//! ```
//! use vliw_machine::{AccessClass, MachineConfig};
//!
//! let m = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
//! assert_eq!(m.clusters.n_clusters, 4);
//! assert_eq!(m.mem_latencies.of(AccessClass::RemoteMiss), 15);
//! // word 3 of a block maps to cluster 3; word 7 to cluster 3 as well
//! assert_eq!(m.home_cluster(3 * 4), 3);
//! assert_eq!(m.home_cluster(7 * 4), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod latency;

pub use config::{
    ArchKind, AttractionBufferConfig, BusConfig, CacheConfig, ClusterConfig, MachineConfig,
    MshrConfig, NextLevelConfig,
};
pub use latency::{AccessClass, MemLatencies, OpLatencies};
