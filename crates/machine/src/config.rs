//! Architecture configuration (Table 2 of the paper).

use std::fmt;

use vliw_ir::FuKind;

use crate::latency::{MemLatencies, OpLatencies};

/// The three architecture families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Word-interleaved distributed data cache (§3).
    WordInterleaved,
    /// Cache-coherent clustered processor (multiVLIW, \[20\]).
    MultiVliw,
    /// Clustered processor with a central multi-ported data cache.
    Unified,
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArchKind::WordInterleaved => "word-interleaved",
            ArchKind::MultiVliw => "multiVLIW",
            ArchKind::Unified => "unified",
        };
        f.write_str(s)
    }
}

/// Cluster resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Number of clusters.
    pub n_clusters: usize,
    /// Integer units per cluster.
    pub int_units: usize,
    /// Floating-point units per cluster.
    pub fp_units: usize,
    /// Memory units per cluster.
    pub mem_units: usize,
}

impl ClusterConfig {
    /// Units of the given kind per cluster.
    pub fn fu_count(&self, kind: FuKind) -> usize {
        match kind {
            FuKind::Int => self.int_units,
            FuKind::Fp => self.fp_units,
            FuKind::Mem => self.mem_units,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_clusters: 4,
            int_units: 1,
            fp_units: 1,
            mem_units: 1,
        }
    }
}

/// First-level cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total L1 capacity in bytes (split across modules when distributed).
    pub total_bytes: usize,
    /// Cache block (line) size in bytes.
    pub block_bytes: usize,
    /// Set associativity.
    pub associativity: usize,
    /// Interleaving factor in bytes (word-interleaved architecture only).
    pub interleave_bytes: usize,
    /// Read/write ports of the unified cache (unified architecture only;
    /// interleaved modules have one local port and one bus-side port).
    pub unified_ports: usize,
}

impl CacheConfig {
    /// Capacity of one per-cluster module when split over `n` clusters.
    pub fn module_bytes(&self, n: usize) -> usize {
        self.total_bytes / n
    }

    /// Bytes of each block held by one cluster (the *subblock* size).
    pub fn subblock_bytes(&self, n: usize) -> usize {
        self.block_bytes / n
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            total_bytes: 8 * 1024,
            block_bytes: 32,
            associativity: 2,
            interleave_bytes: 4,
            unified_ports: 5,
        }
    }
}

/// Interconnect configuration. Both bus families run at half the core
/// frequency (Table 2), so one transfer occupies its bus for
/// [`BusConfig::transfer_cycles`] = 2 core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusConfig {
    /// Register-to-register communication buses.
    pub reg_buses: usize,
    /// Memory buses (cache modules ↔ remote clusters / next level).
    pub mem_buses: usize,
    /// Core cycles one bus transfer occupies (2 = half frequency).
    pub transfer_cycles: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            reg_buses: 4,
            mem_buses: 4,
            transfer_cycles: 2,
        }
    }
}

/// Next memory level: 4 ports, 10-cycle total latency, always hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NextLevelConfig {
    /// Simultaneous requests serviced per cycle.
    pub ports: usize,
    /// Total round-trip latency in cycles.
    pub latency: u32,
}

impl Default for NextLevelConfig {
    fn default() -> Self {
        NextLevelConfig {
            ports: 4,
            latency: 10,
        }
    }
}

/// In-flight request tracking capacity: miss-status holding registers
/// (MSHRs) per cluster. Every outstanding memory transaction — a remote
/// request over the buses or a next-level fill — occupies one register
/// from issue until its fill completes; accesses to an already-tracked
/// subblock attach to the existing register ("combined accesses", §3)
/// instead of issuing, and a request finding every register busy waits
/// for the earliest fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrConfig {
    /// Miss-status registers per cluster (per file on the unified cache).
    pub per_cluster: usize,
}

impl Default for MshrConfig {
    fn default() -> Self {
        MshrConfig { per_cluster: 8 }
    }
}

/// Attraction Buffer geometry (§3): a small per-cluster buffer holding
/// remote *subblocks*; flushed at loop boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttractionBufferConfig {
    /// Number of subblock entries.
    pub entries: usize,
    /// Set associativity.
    pub associativity: usize,
}

impl Default for AttractionBufferConfig {
    fn default() -> Self {
        AttractionBufferConfig {
            entries: 16,
            associativity: 2,
        }
    }
}

/// Complete machine description.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct MachineConfig {
    /// Architecture family.
    pub arch: ArchKind,
    /// Cluster resources.
    pub clusters: ClusterConfig,
    /// L1 geometry.
    pub cache: CacheConfig,
    /// Interconnect.
    pub buses: BusConfig,
    /// Latency of each memory-access class.
    pub mem_latencies: MemLatencies,
    /// Non-memory operation latencies.
    pub op_latencies: OpLatencies,
    /// Attraction Buffers (word-interleaved architecture only).
    pub attraction_buffers: Option<AttractionBufferConfig>,
    /// In-flight request tracking (MSHR) capacity.
    pub mshrs: MshrConfig,
    /// Next memory level.
    pub next_level: NextLevelConfig,
}

impl MachineConfig {
    /// The paper's baseline word-interleaved configuration: Table 2 with
    /// the §4.3.3 latencies (1/5/10/15) and no Attraction Buffers.
    pub fn word_interleaved_4() -> Self {
        MachineConfig {
            arch: ArchKind::WordInterleaved,
            clusters: ClusterConfig::default(),
            cache: CacheConfig::default(),
            buses: BusConfig::default(),
            mem_latencies: MemLatencies::default(),
            op_latencies: OpLatencies::default(),
            attraction_buffers: None,
            mshrs: MshrConfig::default(),
            next_level: NextLevelConfig::default(),
        }
    }

    /// A word-interleaved machine with `n` clusters (total cache capacity
    /// and bus counts kept at Table 2 values).
    pub fn word_interleaved(n: usize) -> Self {
        let mut m = Self::word_interleaved_4();
        m.clusters.n_clusters = n;
        m
    }

    /// The multiVLIW configuration: per-cluster coherent caches. A hit is
    /// local (1 cycle); a miss served by another cluster's cache costs the
    /// remote-hit latency; a miss served by the next level costs the
    /// local-miss latency.
    pub fn multi_vliw_4() -> Self {
        let mut m = Self::word_interleaved_4();
        m.arch = ArchKind::MultiVliw;
        m
    }

    /// The unified-cache configuration with the given cache access latency
    /// (1 = the paper's optimistic bar, 5 = the realistic bar): 5 read/write
    /// ports, a miss adds the next-level round trip.
    pub fn unified_4(cache_latency: u32) -> Self {
        let mut m = Self::word_interleaved_4();
        m.arch = ArchKind::Unified;
        let next = m.next_level.latency;
        m.mem_latencies = MemLatencies {
            local_hit: cache_latency,
            remote_hit: cache_latency, // unused: no remote accesses
            local_miss: cache_latency + next,
            remote_miss: cache_latency + next, // unused
        };
        m
    }

    /// Adds Attraction Buffers with the given geometry (consuming builder).
    pub fn with_attraction_buffers(mut self, entries: usize, associativity: usize) -> Self {
        assert_eq!(
            self.arch,
            ArchKind::WordInterleaved,
            "attraction buffers only exist on the word-interleaved architecture"
        );
        self.attraction_buffers = Some(AttractionBufferConfig {
            entries,
            associativity,
        });
        self
    }

    /// Sets the number of miss-status registers per cluster (consuming
    /// builder).
    pub fn with_mshrs(mut self, per_cluster: usize) -> Self {
        self.mshrs = MshrConfig { per_cluster };
        self
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.n_clusters
    }

    /// `N × I`: the unrolling/padding boundary of the paper
    /// (clusters × interleave factor).
    pub fn ni_bytes(&self) -> i64 {
        (self.clusters.n_clusters * self.cache.interleave_bytes) as i64
    }

    /// The cluster owning byte address `addr` under word interleaving.
    pub fn home_cluster(&self, addr: u64) -> usize {
        (addr as usize / self.cache.interleave_bytes) % self.clusters.n_clusters
    }

    /// Whether the distributed-cache access classes (remote hits/misses)
    /// exist on this architecture. On unified and multiVLIW machines the
    /// scheduler uses the two-latency (hit/miss) scheme of the BASE
    /// algorithm (§4.2).
    pub fn has_remote_accesses(&self) -> bool {
        self.arch == ArchKind::WordInterleaved
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (non-divisible geometry, zero resources, non-monotone
    /// latencies…).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.clusters.n_clusters;
        if n == 0 {
            return Err("machine must have at least one cluster".into());
        }
        if self.clusters.mem_units == 0 {
            return Err("clusters need at least one memory unit".into());
        }
        if !self.cache.total_bytes.is_multiple_of(n) {
            return Err(format!(
                "cache capacity {} not divisible by {n} clusters",
                self.cache.total_bytes
            ));
        }
        if !self
            .cache
            .block_bytes
            .is_multiple_of(n * self.cache.interleave_bytes)
        {
            return Err(format!(
                "block size {} must be a multiple of clusters x interleave = {}",
                self.cache.block_bytes,
                n * self.cache.interleave_bytes
            ));
        }
        let module = self.cache.module_bytes(n);
        let sets = module / (self.cache.subblock_bytes(n) * self.cache.associativity);
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!(
                "module set count {sets} must be a nonzero power of two"
            ));
        }
        let l = &self.mem_latencies;
        if !(l.local_hit <= l.remote_hit
            && l.remote_hit <= l.local_miss
            && l.local_miss <= l.remote_miss)
        {
            return Err("memory latencies must be monotone over access classes".into());
        }
        if self.buses.reg_buses == 0 || self.buses.mem_buses == 0 {
            return Err("bus counts must be nonzero".into());
        }
        if self.mshrs.per_cluster == 0 {
            return Err("MSHR count per cluster must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::word_interleaved_4()
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} / {} clusters", self.arch, self.clusters.n_clusters)?;
        writeln!(
            f,
            "  FUs per cluster: {} INT, {} FP, {} MEM",
            self.clusters.int_units, self.clusters.fp_units, self.clusters.mem_units
        )?;
        writeln!(
            f,
            "  cache: {} KB total, {}-byte blocks, {}-way, interleave {} B",
            self.cache.total_bytes / 1024,
            self.cache.block_bytes,
            self.cache.associativity,
            self.cache.interleave_bytes
        )?;
        writeln!(
            f,
            "  latencies: LH {} / RH {} / LM {} / RM {}",
            self.mem_latencies.local_hit,
            self.mem_latencies.remote_hit,
            self.mem_latencies.local_miss,
            self.mem_latencies.remote_miss
        )?;
        writeln!(
            f,
            "  buses: {} reg + {} mem, {} cycles/transfer",
            self.buses.reg_buses, self.buses.mem_buses, self.buses.transfer_cycles
        )?;
        match self.attraction_buffers {
            Some(ab) => writeln!(
                f,
                "  attraction buffers: {}-entry {}-way",
                ab.entries, ab.associativity
            )?,
            None => writeln!(f, "  attraction buffers: none")?,
        }
        writeln!(f, "  MSHRs: {} per cluster", self.mshrs.per_cluster)?;
        write!(
            f,
            "  next level: {} ports, {} cycles, always hit",
            self.next_level.ports, self.next_level.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::AccessClass;

    #[test]
    fn table2_defaults() {
        let m = MachineConfig::word_interleaved_4();
        assert_eq!(m.clusters.n_clusters, 4);
        assert_eq!(m.clusters.fu_count(FuKind::Int), 1);
        assert_eq!(m.clusters.fu_count(FuKind::Fp), 1);
        assert_eq!(m.clusters.fu_count(FuKind::Mem), 1);
        assert_eq!(m.cache.total_bytes, 8192);
        assert_eq!(m.cache.module_bytes(4), 2048);
        assert_eq!(m.cache.block_bytes, 32);
        assert_eq!(m.cache.subblock_bytes(4), 8);
        assert_eq!(m.buses.reg_buses, 4);
        assert_eq!(m.buses.mem_buses, 4);
        assert_eq!(m.next_level.ports, 4);
        assert_eq!(m.next_level.latency, 10);
        assert_eq!(m.ni_bytes(), 16);
        m.validate().unwrap();
    }

    #[test]
    fn home_cluster_wraps_by_word() {
        let m = MachineConfig::word_interleaved_4();
        // words 0..7 of a 32-byte block: clusters 0,1,2,3,0,1,2,3
        for w in 0..8u64 {
            assert_eq!(m.home_cluster(w * 4), (w % 4) as usize);
        }
        // within a word, all bytes share a home
        assert_eq!(m.home_cluster(5), 1);
        assert_eq!(m.home_cluster(7), 1);
    }

    #[test]
    fn unified_latencies() {
        let m1 = MachineConfig::unified_4(1);
        assert_eq!(m1.mem_latencies.of(AccessClass::LocalHit), 1);
        assert_eq!(m1.mem_latencies.of(AccessClass::LocalMiss), 11);
        let m5 = MachineConfig::unified_4(5);
        assert_eq!(m5.mem_latencies.of(AccessClass::LocalHit), 5);
        assert_eq!(m5.mem_latencies.of(AccessClass::LocalMiss), 15);
        assert!(!m5.has_remote_accesses());
        m5.validate().unwrap();
    }

    #[test]
    fn multivliw_preset() {
        let m = MachineConfig::multi_vliw_4();
        assert_eq!(m.arch, ArchKind::MultiVliw);
        assert!(!m.has_remote_accesses());
        m.validate().unwrap();
    }

    #[test]
    fn attraction_buffer_builder() {
        let m = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
        let ab = m.attraction_buffers.unwrap();
        assert_eq!((ab.entries, ab.associativity), (16, 2));
    }

    #[test]
    #[should_panic(expected = "word-interleaved")]
    fn attraction_buffers_require_interleaved_arch() {
        let _ = MachineConfig::unified_4(1).with_attraction_buffers(16, 2);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut m = MachineConfig::word_interleaved_4();
        m.cache.block_bytes = 24;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::word_interleaved_4();
        m.clusters.n_clusters = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::word_interleaved_4();
        m.mem_latencies.remote_hit = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::word_interleaved_4();
        m.buses.reg_buses = 0;
        assert!(m.validate().is_err());

        let m = MachineConfig::word_interleaved_4().with_mshrs(0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn mshr_builder_and_default() {
        let m = MachineConfig::word_interleaved_4();
        assert_eq!(m.mshrs.per_cluster, 8);
        let m = m.with_mshrs(2);
        assert_eq!(m.mshrs.per_cluster, 2);
        m.validate().unwrap();
        assert!(m.to_string().contains("MSHRs: 2 per cluster"));
    }

    #[test]
    fn two_cluster_variant_for_worked_example() {
        let m = MachineConfig::word_interleaved(2);
        // §4.3.3 uses a 2-cluster machine; keep geometry divisible
        m.validate().unwrap();
        assert_eq!(m.ni_bytes(), 8);
        assert_eq!(m.home_cluster(4), 1);
        assert_eq!(m.home_cluster(8), 0);
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = MachineConfig::word_interleaved_4().to_string();
        assert!(s.contains("word-interleaved"));
        assert!(s.contains("8 KB"));
        assert!(s.contains("LH 1 / RH 5 / LM 10 / RM 15"));
    }
}
