//! Memory access classes and latency tables.

use std::fmt;

use vliw_ir::Opcode;

/// The four classes a memory access falls into on a word-interleaved cache
/// clustered processor (§3 of the paper).
///
/// Ordered from cheapest to most expensive; the latency-assignment step of
/// the scheduler walks this order downwards from [`AccessClass::RemoteMiss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessClass {
    /// The address maps to the local cache module and the data is present.
    LocalHit,
    /// The address maps to a remote module and the data is present there:
    /// bus request + remote cache access + bus reply.
    RemoteHit,
    /// The address maps to the local module but misses: local access + next
    /// memory level round-trip.
    LocalMiss,
    /// The address maps to a remote module and misses there: the most
    /// costly access.
    RemoteMiss,
}

impl AccessClass {
    /// All classes, cheapest first.
    pub const ALL: [AccessClass; 4] = [
        AccessClass::LocalHit,
        AccessClass::RemoteHit,
        AccessClass::LocalMiss,
        AccessClass::RemoteMiss,
    ];

    /// Whether the access is to the local cache module.
    pub fn is_local(self) -> bool {
        matches!(self, AccessClass::LocalHit | AccessClass::LocalMiss)
    }

    /// Whether the access hits in the first-level cache.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessClass::LocalHit | AccessClass::RemoteHit)
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessClass::LocalHit => "local hit",
            AccessClass::RemoteHit => "remote hit",
            AccessClass::LocalMiss => "local miss",
            AccessClass::RemoteMiss => "remote miss",
        };
        f.write_str(s)
    }
}

/// Latency (in core cycles) of each access class.
///
/// The defaults are the values of the paper's worked example (§4.3.3):
/// 1 / 5 / 10 / 15 cycles. They are derivable from Table 2: a remote hit is
/// a half-frequency bus request (2 cycles) + module access (1) + reply (2);
/// a miss adds the 10-cycle next-level round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLatencies {
    /// Local hit latency.
    pub local_hit: u32,
    /// Remote hit latency.
    pub remote_hit: u32,
    /// Local miss latency.
    pub local_miss: u32,
    /// Remote miss latency.
    pub remote_miss: u32,
}

impl MemLatencies {
    /// The latency of `class`.
    pub fn of(&self, class: AccessClass) -> u32 {
        match class {
            AccessClass::LocalHit => self.local_hit,
            AccessClass::RemoteHit => self.remote_hit,
            AccessClass::LocalMiss => self.local_miss,
            AccessClass::RemoteMiss => self.remote_miss,
        }
    }

    /// The cheapest class whose latency is `>= lat` — used to map an
    /// arbitrary assigned latency back to a class for reporting.
    pub fn class_for_latency(&self, lat: u32) -> AccessClass {
        for c in AccessClass::ALL {
            if lat <= self.of(c) {
                return c;
            }
        }
        AccessClass::RemoteMiss
    }
}

impl Default for MemLatencies {
    fn default() -> Self {
        MemLatencies {
            local_hit: 1,
            remote_hit: 5,
            local_miss: 10,
            remote_miss: 15,
        }
    }
}

/// Execution latencies of non-memory opcodes.
///
/// The paper does not tabulate functional-unit latencies; the example DDG
/// shows a 6-cycle divide and 1-cycle ALU operations, which the defaults
/// here extend in the usual embedded-VLIW way (2-cycle multiplies and
/// floating-point adds/multiplies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpLatencies {
    /// Simple integer ALU (add/sub/logic/shift/compare/select).
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide.
    pub int_div: u32,
    /// FP add/subtract.
    pub fp_add: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide.
    pub fp_div: u32,
    /// Store issue latency (completion is asynchronous through the store
    /// buffer; §4.3.3 schedules stores with a 1-cycle latency).
    pub store: u32,
}

impl OpLatencies {
    /// The latency of a non-memory opcode, or of a store.
    ///
    /// # Panics
    ///
    /// Panics for [`Opcode::Load`]: load latencies come from the latency
    /// assignment step, not from this table.
    pub fn of(&self, opcode: Opcode) -> u32 {
        use Opcode::*;
        match opcode {
            Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Select => self.int_alu,
            Mul => self.int_mul,
            Div => self.int_div,
            FAdd | FSub => self.fp_add,
            FMul => self.fp_mul,
            FDiv => self.fp_div,
            Store => self.store,
            Load => panic!("load latency is chosen by the latency-assignment step"),
        }
    }
}

impl Default for OpLatencies {
    fn default() -> Self {
        OpLatencies {
            int_alu: 1,
            int_mul: 2,
            int_div: 6,
            fp_add: 2,
            fp_mul: 2,
            fp_div: 6,
            store: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_cheapest_first() {
        let l = MemLatencies::default();
        let mut prev = 0;
        for c in AccessClass::ALL {
            assert!(l.of(c) > prev);
            prev = l.of(c);
        }
    }

    #[test]
    fn class_predicates() {
        assert!(AccessClass::LocalHit.is_local() && AccessClass::LocalHit.is_hit());
        assert!(!AccessClass::RemoteHit.is_local() && AccessClass::RemoteHit.is_hit());
        assert!(AccessClass::LocalMiss.is_local() && !AccessClass::LocalMiss.is_hit());
        assert!(!AccessClass::RemoteMiss.is_local() && !AccessClass::RemoteMiss.is_hit());
    }

    #[test]
    fn default_latencies_match_worked_example() {
        let l = MemLatencies::default();
        assert_eq!(l.of(AccessClass::LocalHit), 1);
        assert_eq!(l.of(AccessClass::RemoteHit), 5);
        assert_eq!(l.of(AccessClass::LocalMiss), 10);
        assert_eq!(l.of(AccessClass::RemoteMiss), 15);
    }

    #[test]
    fn class_for_latency_rounds_up() {
        let l = MemLatencies::default();
        assert_eq!(l.class_for_latency(1), AccessClass::LocalHit);
        assert_eq!(l.class_for_latency(4), AccessClass::RemoteHit);
        assert_eq!(l.class_for_latency(5), AccessClass::RemoteHit);
        assert_eq!(l.class_for_latency(11), AccessClass::RemoteMiss);
        assert_eq!(l.class_for_latency(99), AccessClass::RemoteMiss);
    }

    #[test]
    fn op_latency_table() {
        let t = OpLatencies::default();
        assert_eq!(t.of(Opcode::Add), 1);
        assert_eq!(t.of(Opcode::Div), 6);
        assert_eq!(t.of(Opcode::FMul), 2);
        assert_eq!(t.of(Opcode::Store), 1);
    }

    #[test]
    #[should_panic(expected = "latency-assignment")]
    fn load_latency_is_not_static() {
        let _ = OpLatencies::default().of(Opcode::Load);
    }
}
