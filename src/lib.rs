//! Facade crate for the interleaved-cache clustered VLIW reproduction.
//!
//! Re-exports every sub-crate of the workspace under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`ir`] — loop IR, dependence graphs, kernel builder, unroller.
//! * [`machine`] — machine descriptions (clusters, caches, buses, latencies).
//! * [`sched`] — the paper's contribution: the modulo-scheduling techniques.
//! * [`mem`] — memory-hierarchy timing models.
//! * [`sim`] — the cycle-level execution engine.
//! * [`workloads`] — the Mediabench-equivalent synthetic suite + profiling.
//! * [`profile`] — measured profiles: per-load latency histograms and
//!   class mixes collected from the timing simulator, persisted in a
//!   deterministic store, feeding the feedback-directed scheduler.
//! * [`experiments`] — drivers regenerating every table and figure.
//! * [`trace`] — zero-overhead-when-off tracing & metrics (spans, dual
//!   logical/wall clocks, Chrome-trace export).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use vliw_experiments as experiments;
pub use vliw_ir as ir;
pub use vliw_machine as machine;
pub use vliw_mem as mem;
pub use vliw_profile as profile;
pub use vliw_sched as sched;
pub use vliw_sim as sim;
pub use vliw_trace as trace;
pub use vliw_workloads as workloads;
