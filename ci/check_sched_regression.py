#!/usr/bin/env python3
"""Guard the scheduler-throughput trajectory.

Compares the `sched` section of a freshly generated BENCH_repro.json
against the committed baseline (ci/sched_baseline.json) and fails when:

* `trial_cycles` — a deterministic work counter, immune to machine
  speed — grew by more than the threshold (an algorithmic regression:
  the scheduler does more work for the same schedules), or
* `schedules_per_sec` regressed by more than the threshold. This is
  wall-clock, so it inherits the variance of whatever runner executes
  it; treat a failure here as a prompt to re-measure (and, if the
  slowdown is real, to either fix it or update the baseline with a
  justification in the PR).

Usage: check_sched_regression.py BASELINE.json FRESH.json [threshold]
"""

import json
import sys


def sched_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    try:
        return doc["figures"]["sched"]["metrics"]
    except KeyError:
        return None


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline, fresh = sched_metrics(sys.argv[1]), sched_metrics(sys.argv[2])
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20
    if baseline is None:
        print("baseline has no sched section; nothing to compare, skipping")
        return 0
    if fresh is None:
        print("FAIL: fresh record has no sched section")
        return 1

    failed = False

    b_work, f_work = baseline.get("trial_cycles"), fresh.get("trial_cycles")
    if b_work and f_work:
        ratio = f_work / b_work
        print(
            f"trial cycles (deterministic): baseline {b_work:.0f} -> "
            f"current {f_work:.0f} ({ratio:.2f}x)"
        )
        if ratio > 1 + threshold:
            print(f"FAIL: scheduling work grew more than {threshold:.0%}")
            failed = True

    b_rate, f_rate = baseline.get("schedules_per_sec"), fresh.get("schedules_per_sec")
    if b_rate and f_rate:
        ratio = f_rate / b_rate
        print(
            f"schedules/sec (wall-clock): baseline {b_rate:.1f} -> "
            f"current {f_rate:.1f} ({ratio:.2f}x, threshold {1 - threshold:.2f}x)"
        )
        if ratio < 1 - threshold:
            print(f"FAIL: scheduling throughput regressed more than {threshold:.0%}")
            failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
