#!/usr/bin/env python3
"""Guard the scheduler- and schedule-cache-throughput trajectory.

Compares the `sched` section of a freshly generated BENCH_repro.json
against the committed baseline (ci/sched_baseline.json) and fails when:

* `trial_cycles` — a deterministic work counter, immune to machine
  speed — grew by more than the threshold (an algorithmic regression:
  the scheduler does more work for the same schedules), or
* `schedules_per_sec` regressed by more than the threshold. This is
  wall-clock, so it inherits the variance of whatever runner executes
  it; treat a failure here as a prompt to re-measure (and, if the
  slowdown is real, to either fix it or update the baseline with a
  justification in the PR).

Also guards the `batch` section (the schedule-cache service):

* `warm_over_cold` — warm-pass over cold-pass throughput, a ratio of
  two wall-clock rates on the same machine, so machine speed cancels —
  must stay at or above the hard floor (5x): a warm cache that is not
  at least 5x a cold run means cache hits are doing scheduling work;
* `warm_schedules_per_sec` must not regress more than the threshold
  against the baseline (wall-clock; same caveat as above);
* `deterministic` and `warm_hit_rate` must be exactly 1.

And the `optgap` section (the exact-search yardstick):

* hard floors on the proven-optimal fraction of the pinned policies
  under the swing numerator: IPBC must exceed 0.41 and no-chains must
  exceed 0.44 at quick scale. These are deterministic search-depth
  numbers (node budget fixed at 200k), not wall-clock: falling back to
  the old fractions means the dominance memoization stopped paying;
* the BASE and IBC proven fractions must not drop below the baseline —
  the pinned-policy gains must not come out of the free policies.

And the `trace` section (the vliw-trace observability subsystem): the
fresh record must carry it, with a nonzero event count and nonzero span
counts for the scheduler and simulator stages. Its presence is what
makes the schedules_per_sec guard meaningful under the
zero-overhead-when-off contract: the `sched` figure is produced by the
same binary that records the trace — tracing compiled in throughout,
enabled only for the trace pass, disabled (`Trace::off()`) for every
timed pass. A missing trace section means the guard measured a binary
without the probes, which is not the configuration that ships.

Usage: check_sched_regression.py BASELINE.json FRESH.json [threshold]
"""

import json
import sys


def figure_metrics(path, figure):
    with open(path) as f:
        doc = json.load(f)
    try:
        return doc["figures"][figure]["metrics"]
    except KeyError:
        return None


WARM_OVER_COLD_FLOOR = 5.0

# Deterministic floors on the quick-scale proven-optimal fraction of the
# pinned policies (swing numerator, 200k-node budget). The pre-bitmask
# scalar MRT plateaued at 0.40625 / 0.4375; the word-parallel search with
# dominance memoization must stay strictly above that plateau.
PROVEN_FRACTION_FLOORS = {
    "proven_fraction/IPBC/swing": 0.41,
    "proven_fraction/no-chains/swing": 0.44,
}
# The free policies must not pay for the pinned-policy gains.
PROVEN_FRACTION_NO_REGRESS = (
    "proven_fraction/BASE/swing",
    "proven_fraction/IBC/swing",
)


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20
    failed = False

    baseline = figure_metrics(sys.argv[1], "sched")
    fresh = figure_metrics(sys.argv[2], "sched")
    if baseline is None:
        print("baseline has no sched section; nothing to compare, skipping")
        return 0
    if fresh is None:
        print("FAIL: fresh record has no sched section")
        return 1

    b_work, f_work = baseline.get("trial_cycles"), fresh.get("trial_cycles")
    if b_work and f_work:
        ratio = f_work / b_work
        print(
            f"trial cycles (deterministic): baseline {b_work:.0f} -> "
            f"current {f_work:.0f} ({ratio:.2f}x)"
        )
        if ratio > 1 + threshold:
            print(f"FAIL: scheduling work grew more than {threshold:.0%}")
            failed = True

    b_rate, f_rate = baseline.get("schedules_per_sec"), fresh.get("schedules_per_sec")
    if b_rate and f_rate:
        ratio = f_rate / b_rate
        print(
            f"schedules/sec (wall-clock): baseline {b_rate:.1f} -> "
            f"current {f_rate:.1f} ({ratio:.2f}x, threshold {1 - threshold:.2f}x)"
        )
        if ratio < 1 - threshold:
            print(f"FAIL: scheduling throughput regressed more than {threshold:.0%}")
            failed = True

    failed |= check_batch(
        figure_metrics(sys.argv[1], "batch"),
        figure_metrics(sys.argv[2], "batch"),
        threshold,
    )
    failed |= check_optgap(
        figure_metrics(sys.argv[1], "optgap"),
        figure_metrics(sys.argv[2], "optgap"),
    )
    failed |= check_trace(figure_metrics(sys.argv[2], "trace"))

    if failed:
        return 1
    print("OK")
    return 0


def check_batch(baseline, fresh, threshold):
    if fresh is None:
        if baseline is not None:
            print("FAIL: baseline has a batch section but the fresh record does not")
            return True
        print("no batch section; skipping cache guard")
        return False
    failed = False

    for key in ("deterministic", "warm_hit_rate", "store_roundtrip_ok"):
        if fresh.get(key) != 1:
            print(f"FAIL: batch {key} is {fresh.get(key)!r}, expected 1")
            failed = True

    ratio = fresh.get("warm_over_cold")
    if ratio is not None:
        print(
            f"warm/cold throughput (machine-speed-free): {ratio:.1f}x "
            f"(floor {WARM_OVER_COLD_FLOOR:.0f}x)"
        )
        if ratio < WARM_OVER_COLD_FLOOR:
            print("FAIL: warm cache passes must be at least 5x cold throughput")
            failed = True

    if baseline is not None:
        b_rate, f_rate = baseline.get("warm_schedules_per_sec"), fresh.get(
            "warm_schedules_per_sec"
        )
        if b_rate and f_rate:
            r = f_rate / b_rate
            print(
                f"warm schedules/sec (wall-clock): baseline {b_rate:.1f} -> "
                f"current {f_rate:.1f} ({r:.2f}x, threshold {1 - threshold:.2f}x)"
            )
            if r < 1 - threshold:
                print(f"FAIL: warm cache throughput regressed more than {threshold:.0%}")
                failed = True
    return failed


def check_optgap(baseline, fresh):
    if fresh is None:
        if baseline is not None:
            print("FAIL: baseline has an optgap section but the fresh record does not")
            return True
        print("no optgap section; skipping exact-search guard")
        return False
    failed = False

    for key, floor in PROVEN_FRACTION_FLOORS.items():
        got = fresh.get(key)
        if got is None:
            print(f"FAIL: optgap record is missing {key}")
            failed = True
            continue
        print(f"{key}: {got:.4f} (hard floor > {floor})")
        if got <= floor:
            print(f"FAIL: {key} fell to the pre-memoization plateau")
            failed = True

    if baseline is not None:
        for key in PROVEN_FRACTION_NO_REGRESS:
            b, f = baseline.get(key), fresh.get(key)
            if b is None or f is None:
                continue
            print(f"{key}: baseline {b:.4f} -> current {f:.4f} (must not drop)")
            if f < b - 1e-9:
                print(f"FAIL: {key} regressed below the baseline")
                failed = True
    return failed


def check_trace(fresh):
    """The throughput guard must measure the shipping configuration:
    tracing compiled in, disabled on every timed path. The trace section
    of the same record proves the probes are present in the binary."""
    if fresh is None:
        print(
            "FAIL: fresh record has no trace section — the schedules_per_sec "
            "guard must run against the tracing-compiled binary "
            "(regenerate with `repro quick all`)"
        )
        return True
    failed = False

    events = fresh.get("events_total", 0)
    print(f"trace events recorded by the instrumented pass: {events:.0f}")
    if events <= 0:
        print("FAIL: the trace pass recorded no events")
        failed = True

    for key in ("span_count/backend.swing", "span_count/sim.loop"):
        if fresh.get(key, 0) <= 0:
            print(f"FAIL: trace section has no {key} spans")
            failed = True

    if not failed:
        print(
            "sched guard measured with tracing compiled in and disabled "
            "(zero-overhead-when-off configuration)"
        )
    return failed


if __name__ == "__main__":
    sys.exit(main())
