#!/usr/bin/env python3
"""Validate a `repro ... trace` Chrome trace artifact.

The artifact (results/trace/trace-<scale>.json) is a Chrome trace-event
JSON array, one event per line, recorded under vliw-trace's logical
clock. This checker fails when:

* the file is not a JSON array of event objects, or is empty;
* logical timestamps are not strictly monotone over the whole recording
  (the logical clock is a process-wide sequence number: event n must
  carry ts > event n-1, whatever track it is on);
* span begin/end events ("ph": "B"/"E") are unbalanced on any track, or
  an "E" closes a span whose name does not match the innermost open "B"
  (spans nest strictly; the Span drop guard guarantees this);
* any instrumented stage recorded zero completed spans — a silent
  de-instrumentation of the pipeline would otherwise pass CI.

Usage: check_trace.py TRACE.json
"""

import json
import sys

# Every instrumented stage must appear at least once in the repro trace:
# the prepare pipeline, both scheduler backends, the cache fill path,
# the unroll-selection driver and the simulator.
REQUIRED_SPANS = [
    "prepare.ddg",
    "prepare.pins",
    "prepare.latency",
    "prepare.mii",
    "prepare.order",
    "backend.swing",
    "backend.bnb",
    "cache.fill",
    "prepare_loop",
    "sim.loop",
]

# Point events and counters the instrumented pass must have emitted.
REQUIRED_INSTANTS = ["cache.miss", "cache.hit", "sim.window", "bnb.solve"]
REQUIRED_COUNTERS = ["batch.queue_depth"]


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    with open(path) as f:
        events = json.load(f)
    if not isinstance(events, list) or not events:
        print(f"FAIL: {path} is not a non-empty JSON array")
        return 1
    print(f"{path}: {len(events)} events")

    failed = False
    last_ts = 0
    stacks = {}  # tid -> [name, ...]
    span_counts = {}
    instant_counts = {}
    counter_names = set()
    for i, ev in enumerate(events):
        name, ph, ts, tid = ev["name"], ev["ph"], ev["ts"], ev["tid"]
        if ts <= last_ts:
            print(f"FAIL: event {i} ({name}): ts {ts} not above predecessor {last_ts}")
            failed = True
        last_ts = ts
        if ph == "B":
            stacks.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                print(f"FAIL: event {i} ({name}): span end with no open span on tid {tid}")
                failed = True
            elif stack[-1] != name:
                print(
                    f"FAIL: event {i}: span end '{name}' does not match "
                    f"innermost open span '{stack[-1]}' on tid {tid}"
                )
                failed = True
            else:
                stack.pop()
                span_counts[name] = span_counts.get(name, 0) + 1
        elif ph == "i":
            instant_counts[name] = instant_counts.get(name, 0) + 1
        elif ph == "C":
            counter_names.add(name)
        else:
            print(f"FAIL: event {i} ({name}): unknown phase {ph!r}")
            failed = True

    for tid, stack in sorted(stacks.items()):
        if stack:
            print(f"FAIL: tid {tid} ends with unclosed spans: {stack}")
            failed = True

    for name in REQUIRED_SPANS:
        n = span_counts.get(name, 0)
        print(f"span {name}: {n}")
        if n == 0:
            print(f"FAIL: instrumented stage '{name}' recorded no spans")
            failed = True
    for name in REQUIRED_INSTANTS:
        n = instant_counts.get(name, 0)
        print(f"instant {name}: {n}")
        if n == 0:
            print(f"FAIL: instant '{name}' never recorded")
            failed = True
    for name in REQUIRED_COUNTERS:
        present = name in counter_names
        print(f"counter {name}: {'present' if present else 'MISSING'}")
        if not present:
            print(f"FAIL: counter '{name}' never sampled")
            failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
