//! A tour of step 1 of the paper's algorithm: individual unrolling
//! factors, the OUF, and the selective three-way choice.
//!
//! Run with `cargo run --example unrolling_tour`.

use interleaved_vliw::ir::{ArrayKind, KernelBuilder, Opcode};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{
    individual_unroll_factor, optimal_unroll_factor, select_unrolling, ClusterPolicy,
    ScheduleOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::word_interleaved_4();
    let ni = machine.ni_bytes();
    println!("N x I = {ni} bytes (4 clusters x 4-byte interleave)\n");

    // individual factors, as in §4.3.1's formula
    println!("individual unrolling factors Ui = NxI / gcd(NxI, Si mod NxI):");
    for stride in [1i64, 2, 4, 8, 12, 16, 24] {
        println!(
            "  stride {stride:>2} bytes -> Ui = {}",
            individual_unroll_factor(stride, ni)
        );
    }

    // a mixed loop: a 4-byte stream, a 2-byte stream and a double stream
    let mut b = KernelBuilder::new("mixed");
    let a = b.array("a", 8192, ArrayKind::Heap);
    let c = b.array("c", 8192, ArrayKind::Heap);
    let d = b.array("d", 8192, ArrayKind::Heap);
    let (_, x) = b.load("ld4", a, 0, 4, 4); // Ui = 4
    let (_, y) = b.load("ld2", c, 0, 2, 2); // Ui = 8
    let (_, z) = b.load("ld8", d, 0, 8, 8); // granularity 8 > I: not considered
    let (_, s) = b.int_op("sum", Opcode::Add, &[x.into(), y.into()]);
    let (_, t) = b.int_op("sum2", Opcode::Add, &[s.into(), z.into()]);
    b.store("st", a, 4096, 4, 4, t);
    let kernel = b.finish(512.0);

    let ouf = optimal_unroll_factor(&kernel, &machine);
    println!("\nloop OUF = lcm(4, 8) = {ouf}");

    // selective unrolling schedules all three variants and compares Texec
    let sel = select_unrolling(
        &kernel,
        &machine,
        ScheduleOptions::new(ClusterPolicy::PreBuildChains),
        |_| {},
    )?;
    println!("\nselective unrolling evaluated:");
    for (choice, factor, ii, texec) in &sel.evaluated {
        println!("  {choice:<14} factor {factor:>2}: II {ii:>3}, Texec {texec:>9.0}");
    }
    println!(
        "\nchosen: {} (factor {}) -> II {} with {} ops in the kernel",
        sel.choice,
        sel.factor,
        sel.schedule.ii,
        sel.kernel.ops.len()
    );
    Ok(())
}
