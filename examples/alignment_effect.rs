//! The §4.3.4 variable-alignment effect, isolated: the same loop profiled
//! on one input and executed on another, with and without padding.
//!
//! Without padding, a dynamically allocated array lands at a different
//! `mod N×I` offset under the execution input than under the profiling
//! input, the preferred-cluster information goes stale, and the local hit
//! ratio collapses — the paper's gsmdec anecdote. Padding stack frames and
//! `malloc` results to `N×I` makes the profile stable.
//!
//! Run with `cargo run --release --example alignment_effect`.

use interleaved_vliw::experiments::{run_benchmark, ExperimentContext, RunConfig, UnrollMode};
use interleaved_vliw::workloads::{spec_by_name, synthesize};

fn main() {
    let ctx = ExperimentContext::full();
    let spec = spec_by_name("gsmdec").expect("gsmdec in suite");
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);

    println!("gsmdec (2-byte samples in dynamically allocated buffers), IPBC + OUF:\n");
    println!(
        "{:>20} {:>11} {:>11} {:>11} {:>11}",
        "", "local hits", "remote hits", "misses", "stall"
    );
    for (label, padding) in [("without alignment", false), ("with alignment", true)] {
        let cfg = RunConfig {
            unroll: UnrollMode::Ouf,
            padding,
            ..RunConfig::ipbc()
        };
        let run = run_benchmark(&model, &cfg, &ctx);
        let mix = run.access_mix();
        let total: f64 = mix.iter().sum();
        println!(
            "{label:>20} {:>10.1}% {:>10.1}% {:>10.1}% {:>11.0}",
            100.0 * mix[0] / total,
            100.0 * mix[1] / total,
            100.0 * (mix[2] + mix[3]) / total,
            run.stall_cycles(),
        );
    }
    println!(
        "\nThe paper reports a ~20 percentage-point local-hit gain from variable\n\
         alignment on average (Figure 4, bars ii vs iii)."
    );
}
