//! Compare the three cache organizations on one benchmark — a single-row
//! slice of the paper's Figure 8.
//!
//! Run with `cargo run --release --example arch_compare [benchmark]`
//! (default: gsmdec).

use interleaved_vliw::experiments::{run_benchmark, ExperimentContext, RunConfig};
use interleaved_vliw::workloads::{spec_by_name, synthesize};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "gsmdec".into());
    let ctx = ExperimentContext::full();
    let spec = spec_by_name(&bench).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark `{bench}`; available: {:?}",
            interleaved_vliw::workloads::SUITE_NAMES
        );
        std::process::exit(1);
    });
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    println!(
        "benchmark {bench}: {} modulo-scheduled loops\n",
        model.loops.len()
    );

    let configs: [(&str, RunConfig); 5] = [
        (
            "word-interleaved IPBC + AB",
            RunConfig::ipbc().with_buffers(),
        ),
        ("word-interleaved IBC + AB", RunConfig::ibc().with_buffers()),
        ("multiVLIW (coherent)", RunConfig::multivliw()),
        ("unified cache, 5-cycle", RunConfig::unified(5)),
        ("unified cache, 1-cycle", RunConfig::unified(1)),
    ];

    let mut baseline = None;
    println!(
        "{:28} {:>12} {:>12} {:>12} {:>10}",
        "architecture", "compute", "stall", "total", "vs uni-1"
    );
    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let run = run_benchmark(&model, &cfg, &ctx);
        rows.push((
            name,
            run.compute_cycles(),
            run.stall_cycles(),
            run.total_cycles(),
        ));
        if name.starts_with("unified cache, 1") {
            baseline = Some(run.total_cycles());
        }
    }
    let base = baseline.expect("baseline present");
    for (name, compute, stall, total) in rows {
        println!(
            "{:28} {:>12.0} {:>12.0} {:>12.0} {:>9.2}x",
            name,
            compute,
            stall,
            total,
            total / base
        );
    }
}
