//! The paper's §4.3.3 worked example, end to end: Figure 3's DDG, the
//! benefit-table reduction steps, the final latencies and the IPBC
//! placement — every number checked against the paper's narrative.
//!
//! Run with `cargo run --example worked_example_433`.

use interleaved_vliw::experiments::example433::example433;
use interleaved_vliw::ir::Ddg;
use interleaved_vliw::sched::examples_443::{figure3_kernel, figure3_machine};
use interleaved_vliw::sched::{elementary_circuits, EnumLimits};

fn main() {
    let (kernel, _ops) = figure3_kernel();
    println!("The Figure 3 loop:\n{kernel}");

    let ddg = Ddg::build(&kernel);
    let circuits = elementary_circuits(&ddg, EnumLimits::default());
    println!("{} recurrences (elementary circuits) found", circuits.len());

    let machine = figure3_machine();
    println!("\nMachine: {machine}\n");

    let e = example433();
    println!("{e}");

    // the paper's checkpoints
    assert_eq!(e.mii, 8, "the loop MII is 8");
    assert_eq!(
        e.final_latencies,
        (4, 1, 1),
        "n1 = 4 cycles, n2 = n6 = local hit"
    );
    assert_eq!(e.ipbc_ii, 8, "IPBC achieves the MII");
    println!("all §4.3.3 checkpoints hold");
}
