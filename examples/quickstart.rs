//! Quickstart: build a loop, schedule it for the paper's 4-cluster
//! word-interleaved machine with the IPBC heuristic, and execute it.
//!
//! Run with `cargo run --example quickstart`.

use interleaved_vliw::ir::{ArrayKind, KernelBuilder, MemProfile, OpId, Opcode};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::mem::build_cache;
use interleaved_vliw::sched::{schedule_kernel, AttractionHints, ClusterPolicy, ScheduleOptions};
use interleaved_vliw::sim::{simulate_loop, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A saxpy-like kernel: y[i] = a * x[i] + y[i], stride N×I so every
    //    static access stays in one cluster (as OUF unrolling would ensure).
    let mut b = KernelBuilder::new("saxpy16");
    let x = b.array("x", 8192, ArrayKind::Heap);
    let y = b.array("y", 8192, ArrayKind::Heap);
    let a = b.live_in(); // loop-invariant scalar
    let (ld_x, xv) = b.load("ld_x", x, 0, 16, 4);
    let (ld_y, yv) = b.load("ld_y", y, 4, 16, 4);
    let (_, p) = b.int_op("mul", Opcode::Mul, &[xv.into(), a.into()]);
    let (_, s) = b.int_op("add", Opcode::Add, &[p.into(), yv.into()]);
    let (st_y, _) = b.store("st_y", y, 4, 16, 4, s);
    // profiles normally come from the profiling pass; set them directly here
    b.set_profile(ld_x, MemProfile::concentrated(0.95, 0, 4));
    b.set_profile(ld_y, MemProfile::concentrated(0.95, 1, 4));
    b.set_profile(st_y, MemProfile::concentrated(1.0, 1, 4));
    let kernel = b.finish(1024.0);

    // 2. The paper's machine (Table 2) with 16-entry Attraction Buffers.
    let machine = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
    println!("{machine}\n");

    // 3. Modulo-schedule with IPBC (chains pinned to preferred clusters).
    let schedule = schedule_kernel(
        &kernel,
        &machine,
        ScheduleOptions::new(ClusterPolicy::PreBuildChains),
    )?;
    println!("{schedule}");
    assert!(
        schedule.verify(&kernel, &machine).is_empty(),
        "schedule is legal"
    );

    // 4. Execute it for the loop's trip count and report cycles and stalls.
    let mut cache = build_cache(&machine);
    let hints = AttractionHints::allow_all(&kernel);
    let kernel2 = kernel.clone();
    let mut addresses = move |op: OpId, iter: u64| {
        let m = kernel2.op(op).mem.as_ref().unwrap();
        0x10000 * (m.array.index() as u64 + 1) + (m.offset + m.stride.unwrap() * iter as i64) as u64
    };
    let result = simulate_loop(
        &kernel,
        &schedule,
        &machine,
        cache.as_mut(),
        &mut addresses,
        &hints,
        &SimOptions::default(),
    );
    println!(
        "compute {:.0} cycles + stall {:.0} cycles over {} simulated iterations",
        result.compute_cycles, result.stall_cycles, result.sim_iterations
    );
    println!("memory accesses: {}", result.mem);
    Ok(())
}
