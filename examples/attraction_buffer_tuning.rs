//! Sweep the Attraction Buffer geometry on a remote-heavy benchmark and
//! watch stall time fall — the design space behind the paper's fixed
//! 16-entry choice (§3 and Figure 6).
//!
//! Run with `cargo run --release --example attraction_buffer_tuning`.

use interleaved_vliw::experiments::{run_benchmark, ExperimentContext, RunConfig};
use interleaved_vliw::machine::AccessClass;
use interleaved_vliw::workloads::{spec_by_name, synthesize};

fn main() {
    let ctx = ExperimentContext::full();
    let spec = spec_by_name("epicdec").expect("epicdec in suite");
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);

    println!("epicdec under IPBC, sweeping buffer entries (2-way associative):\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "entries", "stall", "remote-hit st.", "vs no buffer"
    );

    let mut base = None;
    for entries in [0usize, 4, 8, 16, 32, 64] {
        let cfg = if entries == 0 {
            RunConfig::ipbc()
        } else {
            RunConfig {
                attraction_buffers: Some((entries, 2)),
                ..RunConfig::ipbc()
            }
        };
        let run = run_benchmark(&model, &cfg, &ctx);
        let stall = run.stall_cycles();
        let rh = run.stall_breakdown().of(AccessClass::RemoteHit);
        if entries == 0 {
            base = Some(stall);
        }
        let rel = stall / base.expect("base set first");
        println!(
            "{:>10} {:>12.0} {:>14.0} {:>13.2}x",
            entries, stall, rh, rel
        );
    }
    println!(
        "\nThe paper's 16-entry buffers cut average stall by 34%/29% (IBC/IPBC, Figure 6);\n\
         epicdec benefits less because one loop's 19 memory instructions overflow the\n\
         buffer (§5.2) — see `repro hints` for the compiler-hint fix."
    );
}
