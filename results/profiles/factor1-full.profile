vliw-profile-store 1
loops 108
loop epicdec_l0 fp 6c3058494290d6e9 ops 14 mem 7
op 0 classes 96 288 0 0 combined 288 ab 0 clusters 4 96 96 96 96 lat 1 1 384
op 1 classes 96 288 0 0 combined 9 ab 0 clusters 4 96 96 96 96 lat 3 1 96 4 9 5 279
op 2 classes 192 192 0 0 combined 0 ab 0 clusters 4 192 0 192 0 lat 2 1 192 5 192
op 3 classes 96 288 0 0 combined 0 ab 0 clusters 4 96 96 96 96 lat 2 1 96 5 288
op 4 classes 96 288 0 0 combined 0 ab 0 clusters 4 96 96 96 96 lat 2 1 96 5 288
op 5 classes 96 288 0 0 combined 0 ab 0 clusters 4 96 96 96 96 lat 2 1 96 5 288
op 13 classes 96 288 0 0 combined 0 ab 0 clusters 4 96 96 96 96 lat 1 1 384
endloop
loop epicdec_l1 fp 1e4fdd325954d736 ops 7 mem 3
op 0 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 34 35 35 lat 2 1 35 5 104
op 1 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 35 35 34 lat 2 1 35 5 104
op 6 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 35 34 35 lat 1 1 139
endloop
loop epicdec_l19 fp 8306505bb384e182 ops 26 mem 20
op 0 classes 408 0 104 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 2 1 408 10 104
op 1 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 512 0 0 lat 1 5 512
op 2 classes 0 352 0 160 combined 0 ab 0 clusters 4 0 0 512 0 lat 3 5 336 6 16 15 160
op 3 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 0 512 lat 2 5 358 6 154
op 4 classes 304 0 208 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 2 1 304 10 208
op 5 classes 0 336 0 176 combined 0 ab 0 clusters 4 0 512 0 0 lat 3 5 182 6 154 15 176
op 6 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 512 0 lat 2 5 334 6 178
op 7 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 0 512 lat 2 5 342 6 170
op 8 classes 504 0 8 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 2 1 504 10 8
op 9 classes 0 328 0 184 combined 0 ab 0 clusters 4 0 512 0 0 lat 3 5 174 6 154 15 184
op 10 classes 0 348 0 164 combined 0 ab 0 clusters 4 0 0 512 0 lat 5 5 122 6 72 7 154 15 60 16 104
op 11 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 0 512 lat 2 5 306 6 206
op 12 classes 304 0 208 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 2 1 304 10 208
op 13 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 512 0 0 lat 2 5 350 6 162
op 14 classes 0 348 0 164 combined 0 ab 0 clusters 4 0 0 512 0 lat 5 5 304 6 44 15 56 16 100 17 8
op 15 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 0 512 lat 3 5 134 6 266 7 112
op 16 classes 504 0 8 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 2 1 504 10 8
op 17 classes 0 352 0 160 combined 0 ab 0 clusters 4 0 512 0 0 lat 2 5 352 15 160
op 18 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 512 0 lat 2 5 504 6 8
op 25 classes 512 0 0 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 1 1 512
endloop
loop epicdec_l2 fp 1d2253b73c739a42 ops 10 mem 5
op 0 classes 28 83 0 0 combined 0 ab 0 clusters 4 27 28 28 28 lat 2 1 28 5 83
op 1 classes 28 83 0 0 combined 0 ab 0 clusters 4 27 28 28 28 lat 2 1 28 5 83
op 2 classes 28 83 0 0 combined 0 ab 0 clusters 4 27 28 28 28 lat 2 1 28 5 83
op 8 classes 27 84 0 0 combined 0 ab 0 clusters 4 28 27 28 28 lat 1 1 111
op 9 classes 28 83 0 0 combined 0 ab 0 clusters 4 28 28 28 27 lat 1 1 111
endloop
loop epicdec_l3 fp ff0b7b8a1814ccd8 ops 9 mem 4
op 0 classes 76 215 11 44 combined 11 ab 0 clusters 4 87 87 86 86 lat 8 1 82 3 5 5 215 10 11 15 10 16 11 17 6 19 6
op 1 classes 75 225 12 34 combined 0 ab 0 clusters 4 87 87 86 86 lat 8 1 75 5 202 6 11 7 6 9 6 10 12 15 22 16 12
op 2 classes 75 225 11 35 combined 0 ab 0 clusters 4 86 86 87 87 lat 8 1 75 5 197 6 10 7 18 10 11 15 23 16 6 17 6
op 8 classes 87 259 0 0 combined 0 ab 0 clusters 4 87 86 86 87 lat 1 1 346
endloop
loop epicdec_l4 fp 998ef940b7efa27f ops 9 mem 4
op 0 classes 42 123 0 0 combined 29 ab 0 clusters 4 41 42 41 41 lat 8 1 53 2 18 5 8 6 1 7 2 8 37 9 27 10 19
op 1 classes 42 123 0 0 combined 45 ab 0 clusters 4 42 41 41 41 lat 9 1 84 2 1 3 2 5 9 7 3 8 18 9 45 10 1 11 2
op 7 classes 42 123 0 0 combined 0 ab 0 clusters 4 41 41 42 41 lat 1 1 165
op 8 classes 41 124 0 0 combined 0 ab 0 clusters 4 41 41 41 42 lat 1 1 165
endloop
loop epicdec_l5 fp 9f3114344cbf960f ops 8 mem 3
op 0 classes 233 233 12 12 combined 0 ab 0 clusters 4 245 0 245 0 lat 4 1 233 5 233 10 12 15 12
op 1 classes 123 367 0 0 combined 0 ab 0 clusters 4 123 123 122 122 lat 2 1 123 5 367
op 7 classes 107 323 15 45 combined 0 ab 0 clusters 4 122 122 123 123 lat 1 1 490
endloop
loop epicdec_l6 fp 7fe1740c54694bb3 ops 12 mem 6
op 0 classes 70 211 58 173 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 70 5 211 10 58 15 173
op 1 classes 165 166 91 90 combined 0 ab 0 clusters 4 256 0 256 0 lat 4 1 165 5 166 10 91 15 90
op 2 classes 64 198 64 186 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 64 5 198 10 64 15 186
op 3 classes 0 478 0 34 combined 0 ab 0 clusters 4 0 256 0 256 lat 2 5 478 15 34
op 10 classes 123 371 5 13 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 11 classes 72 269 56 115 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop epicenc_l0 fp fdbb3209862e8653 ops 10 mem 4
op 0 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 2 1 256 5 256
op 1 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 2 1 256 5 256
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 9 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
endloop
loop epicenc_l1 fp d7db2ae1f59eb707 ops 9 mem 4
op 0 classes 104 288 24 96 combined 232 ab 0 clusters 4 128 128 128 128 lat 9 1 248 2 8 3 24 5 144 6 8 7 24 10 8 11 24 15 24
op 1 classes 64 192 64 192 combined 64 ab 0 clusters 4 128 128 128 128 lat 6 1 64 2 16 5 192 7 48 10 48 15 144
op 2 classes 216 217 40 39 combined 39 ab 0 clusters 4 256 0 256 0 lat 6 1 216 2 20 5 217 7 19 10 20 15 20
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop epicenc_l2 fp de942bfbca732fbb ops 12 mem 5
op 0 classes 63 188 0 0 combined 0 ab 0 clusters 4 63 62 63 63 lat 2 1 63 5 188
op 1 classes 63 188 0 0 combined 0 ab 0 clusters 4 63 63 62 63 lat 2 1 63 5 188
op 2 classes 63 188 0 0 combined 0 ab 0 clusters 4 63 63 62 63 lat 2 1 63 5 188
op 3 classes 126 125 0 0 combined 0 ab 0 clusters 4 126 0 125 0 lat 2 1 126 5 125
op 11 classes 63 188 0 0 combined 0 ab 0 clusters 4 63 63 63 62 lat 1 1 251
endloop
loop epicenc_l3 fp f0233ba0a7fb1113 ops 9 mem 4
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 374 6 10
op 1 classes 120 360 8 24 combined 9 ab 0 clusters 4 128 128 128 128 lat 7 1 120 2 9 5 334 6 16 7 1 10 8 15 24
op 2 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 5 1 128 5 373 6 9 7 1 8 1
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop epicenc_l4 fp 4fac9ce12835fcd7 ops 15 mem 8
op 0 classes 82 245 0 0 combined 0 ab 0 clusters 4 82 82 82 81 lat 6 1 82 5 222 6 20 7 1 10 1 11 1
op 1 classes 81 246 0 0 combined 15 ab 0 clusters 4 81 82 82 82 lat 6 1 92 4 4 5 213 6 16 7 1 10 1
op 2 classes 164 163 0 0 combined 7 ab 0 clusters 4 164 0 163 0 lat 8 1 164 2 4 3 3 5 144 6 1 7 9 9 1 12 1
op 3 classes 73 216 9 29 combined 2 ab 0 clusters 4 82 82 81 82 lat 8 1 73 5 216 6 2 10 9 15 18 16 1 17 7 20 1
op 4 classes 82 245 0 0 combined 5 ab 0 clusters 4 82 81 82 82 lat 7 1 82 4 4 5 219 6 11 7 9 9 1 11 1
op 5 classes 76 227 6 18 combined 0 ab 0 clusters 4 82 81 82 82 lat 8 1 76 5 210 6 14 8 1 9 1 10 7 15 9 16 9
op 13 classes 0 327 0 0 combined 0 ab 0 clusters 4 0 164 0 163 lat 1 1 327
op 14 classes 82 245 0 0 combined 0 ab 0 clusters 4 82 81 82 82 lat 1 1 327
endloop
loop epicenc_l5 fp 8b1e9a5ed7ab2dc9 ops 9 mem 3
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 96 291 32 93 combined 238 ab 0 clusters 4 128 128 128 128 lat 10 1 104 2 145 4 8 5 146 6 23 7 8 9 23 10 8 12 23 15 24
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop epicenc_l6 fp 816698bd119c11d8 ops 12 mem 6
op 0 classes 127 382 1 2 combined 0 ab 0 clusters 4 128 128 128 128 lat 13 1 127 5 132 6 95 7 51 8 47 9 23 10 15 11 9 12 8 13 2 14 1 16 1 17 1
op 1 classes 125 372 3 12 combined 0 ab 0 clusters 4 128 128 128 128 lat 13 1 125 5 188 6 97 7 48 8 17 9 7 10 11 11 5 12 2 15 7 17 3 18 1 19 1
op 2 classes 105 264 37 106 combined 2 ab 0 clusters 4 117 123 142 130 lat 18 1 105 5 161 6 39 7 33 8 11 9 13 10 40 11 2 12 3 13 1 15 40 16 18 17 18 18 13 19 9 20 1 21 4 22 1
op 3 classes 106 316 22 68 combined 1 ab 0 clusters 4 128 128 128 128 lat 17 1 106 4 1 5 158 6 86 7 32 8 19 9 4 10 29 11 8 12 1 15 24 16 22 17 11 18 3 19 4 20 2 21 2
op 10 classes 127 378 1 6 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 11 classes 128 383 0 1 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop epicenc_l7 fp 4656ad61f754d6a8 ops 18 mem 8
op 0 classes 42 125 0 0 combined 0 ab 0 clusters 4 42 42 42 41 lat 2 1 42 5 125
op 1 classes 42 125 0 0 combined 0 ab 0 clusters 4 42 42 42 41 lat 2 1 42 5 125
op 2 classes 42 125 0 0 combined 0 ab 0 clusters 4 42 42 41 42 lat 2 1 42 5 125
op 3 classes 41 126 0 0 combined 0 ab 0 clusters 4 41 42 42 42 lat 2 1 41 5 126
op 4 classes 42 125 0 0 combined 0 ab 0 clusters 4 42 42 41 42 lat 2 1 42 5 125
op 5 classes 42 125 0 0 combined 0 ab 0 clusters 4 42 41 42 42 lat 2 1 42 5 125
op 16 classes 41 126 0 0 combined 0 ab 0 clusters 4 41 42 42 42 lat 1 1 167
op 17 classes 30 137 0 0 combined 0 ab 0 clusters 4 30 45 46 46 lat 1 1 167
endloop
loop g721dec_l0 fp e4b17ec082afa062 ops 15 mem 6
op 0 classes 44 129 0 0 combined 0 ab 0 clusters 4 44 44 42 43 lat 2 1 44 5 129
op 1 classes 42 131 0 0 combined 0 ab 0 clusters 4 42 43 44 44 lat 2 1 42 5 131
op 2 classes 44 129 0 0 combined 0 ab 0 clusters 4 44 42 43 44 lat 2 1 44 5 129
op 3 classes 44 129 0 0 combined 0 ab 0 clusters 4 44 43 42 44 lat 2 1 44 5 129
op 4 classes 44 129 0 0 combined 2 ab 0 clusters 4 44 43 43 43 lat 3 1 44 4 2 5 127
op 14 classes 44 129 0 0 combined 0 ab 0 clusters 4 44 43 42 44 lat 1 1 173
endloop
loop g721dec_l1 fp 205883819c0ea623 ops 8 mem 3
op 0 classes 42 123 0 0 combined 65 ab 0 clusters 4 42 41 40 42 lat 4 1 46 2 57 4 4 5 58
op 1 classes 42 123 0 0 combined 61 ab 0 clusters 4 42 43 40 40 lat 3 1 42 2 61 5 62
op 7 classes 44 121 0 0 combined 0 ab 0 clusters 4 44 40 40 41 lat 1 1 165
endloop
loop g721dec_l2 fp 197f50fc2bbc78b5 ops 13 mem 5
op 0 classes 36 102 0 0 combined 51 ab 0 clusters 4 34 36 34 34 lat 2 1 87 5 51
op 1 classes 34 104 0 0 combined 52 ab 0 clusters 4 34 34 36 34 lat 2 1 86 5 52
op 2 classes 36 102 0 0 combined 51 ab 0 clusters 4 36 34 34 34 lat 2 1 87 5 51
op 3 classes 35 103 0 0 combined 51 ab 0 clusters 4 35 35 34 34 lat 2 1 86 5 52
op 12 classes 36 102 0 0 combined 0 ab 0 clusters 4 34 36 34 34 lat 1 1 138
endloop
loop g721dec_l3 fp bbf44281fc435e4b ops 14 mem 7
op 0 classes 32 93 0 0 combined 46 ab 0 clusters 4 32 30 31 32 lat 12 1 32 2 2 4 2 5 3 7 3 9 1 10 15 11 25 12 2 13 14 14 25 15 1
op 1 classes 32 93 0 0 combined 14 ab 0 clusters 4 31 32 31 31 lat 11 1 45 3 1 5 4 6 2 7 1 9 2 10 1 12 2 13 27 14 26 15 14
op 2 classes 32 93 0 0 combined 39 ab 0 clusters 4 32 31 31 31 lat 14 1 32 2 24 3 13 4 2 5 3 7 2 8 1 10 2 11 1 13 1 14 15 15 14 16 14 17 1
op 3 classes 32 93 0 0 combined 46 ab 0 clusters 4 30 31 32 32 lat 14 1 32 3 1 5 1 6 2 8 2 9 14 10 1 11 2 12 14 13 14 14 15 15 13 16 12 17 2
op 4 classes 32 93 0 0 combined 46 ab 0 clusters 4 30 31 32 32 lat 13 1 32 3 2 5 2 6 2 7 1 8 2 10 1 11 15 12 25 13 2 14 14 15 25 16 2
op 5 classes 30 95 0 0 combined 47 ab 0 clusters 4 31 30 32 32 lat 15 1 30 3 1 5 1 6 3 7 1 8 1 9 2 10 14 11 2 12 14 13 1 14 15 15 27 17 12 18 1
op 13 classes 32 93 0 0 combined 0 ab 0 clusters 4 30 32 32 31 lat 1 1 125
endloop
loop g721dec_l4 fp ca29c34ca4863986 ops 15 mem 8
op 0 classes 44 130 0 0 combined 1 ab 0 clusters 4 44 44 42 44 lat 3 1 44 3 1 5 129
op 1 classes 44 130 0 0 combined 2 ab 0 clusters 4 44 44 43 43 lat 3 1 44 4 2 5 128
op 2 classes 44 130 0 0 combined 0 ab 0 clusters 4 44 44 42 44 lat 2 1 44 5 130
op 3 classes 44 130 0 0 combined 0 ab 0 clusters 4 44 44 42 44 lat 3 1 44 5 96 6 34
op 4 classes 44 130 0 0 combined 0 ab 0 clusters 4 44 44 44 42 lat 3 1 44 5 115 6 15
op 5 classes 56 118 0 0 combined 0 ab 0 clusters 4 56 39 32 47 lat 2 1 56 5 118
op 13 classes 43 131 0 0 combined 0 ab 0 clusters 4 43 43 44 44 lat 1 1 174
op 14 classes 44 130 0 0 combined 0 ab 0 clusters 4 43 44 44 43 lat 1 1 174
endloop
loop g721dec_l5 fp 9ac0d4cc858fd6e6 ops 14 mem 7
op 0 classes 30 85 0 0 combined 42 ab 0 clusters 4 29 30 28 28 lat 2 1 72 5 43
op 1 classes 29 86 0 0 combined 43 ab 0 clusters 4 29 28 28 30 lat 2 1 72 5 43
op 2 classes 29 86 0 0 combined 43 ab 0 clusters 4 28 29 30 28 lat 4 1 59 2 13 5 30 6 13
op 3 classes 30 85 0 0 combined 42 ab 0 clusters 4 28 30 29 28 lat 2 1 72 5 43
op 4 classes 30 85 0 0 combined 42 ab 0 clusters 4 29 30 28 28 lat 2 1 72 5 43
op 5 classes 30 85 0 0 combined 42 ab 0 clusters 4 28 28 29 30 lat 3 1 72 5 42 6 1
op 13 classes 30 85 0 0 combined 0 ab 0 clusters 4 30 28 28 29 lat 1 1 115
endloop
loop g721enc_l0 fp 23600746efd1059a ops 10 mem 5
op 0 classes 16 48 0 0 combined 0 ab 0 clusters 4 16 16 16 16 lat 2 1 16 5 48
op 1 classes 16 48 0 0 combined 0 ab 0 clusters 4 16 16 16 16 lat 2 1 16 5 48
op 2 classes 16 48 0 0 combined 0 ab 0 clusters 4 16 16 16 16 lat 2 1 16 5 48
op 3 classes 16 48 0 0 combined 0 ab 0 clusters 4 16 16 16 16 lat 2 1 16 5 48
op 9 classes 16 48 0 0 combined 0 ab 0 clusters 4 16 16 16 16 lat 1 1 64
endloop
loop g721enc_l1 fp 9e1c92c5933ccb20 ops 14 mem 6
op 0 classes 58 171 0 0 combined 1 ab 0 clusters 4 58 58 57 56 lat 3 1 59 5 141 6 29
op 1 classes 56 173 0 0 combined 28 ab 0 clusters 4 56 57 58 58 lat 3 1 84 5 89 6 56
op 2 classes 58 171 0 0 combined 27 ab 0 clusters 4 58 58 56 57 lat 5 1 58 2 27 5 87 6 30 7 27
op 3 classes 58 171 0 0 combined 0 ab 0 clusters 4 57 58 57 57 lat 3 1 58 5 170 6 1
op 4 classes 58 171 0 0 combined 28 ab 0 clusters 4 58 58 56 57 lat 3 1 86 5 86 6 57
op 13 classes 57 172 0 0 combined 0 ab 0 clusters 4 57 57 57 58 lat 1 1 229
endloop
loop g721enc_l2 fp bf36c198d3c09d02 ops 15 mem 8
op 0 classes 28 83 0 0 combined 26 ab 0 clusters 4 28 28 28 27 lat 3 1 54 5 31 6 26
op 1 classes 28 83 0 0 combined 13 ab 0 clusters 4 28 27 28 28 lat 4 1 41 5 31 6 26 7 13
op 2 classes 28 83 0 0 combined 26 ab 0 clusters 4 27 28 28 28 lat 5 1 41 3 13 5 18 6 26 8 13
op 3 classes 28 83 0 0 combined 26 ab 0 clusters 4 28 27 28 28 lat 5 1 41 2 13 5 18 6 26 7 13
op 4 classes 28 83 0 0 combined 13 ab 0 clusters 4 28 28 27 28 lat 3 1 41 5 43 6 27
op 5 classes 28 83 0 0 combined 13 ab 0 clusters 4 27 28 28 28 lat 3 1 41 5 57 6 13
op 13 classes 28 83 0 0 combined 0 ab 0 clusters 4 27 28 28 28 lat 1 1 111
op 14 classes 28 83 0 0 combined 0 ab 0 clusters 4 28 28 27 28 lat 1 1 111
endloop
loop g721enc_l3 fp 61c2a21be8c6564c ops 11 mem 6
op 0 classes 40 118 0 0 combined 0 ab 0 clusters 4 39 40 40 39 lat 2 1 40 5 118
op 1 classes 39 119 0 0 combined 0 ab 0 clusters 4 39 40 40 39 lat 2 1 39 5 119
op 2 classes 40 118 0 0 combined 0 ab 0 clusters 4 40 40 40 38 lat 3 1 40 5 80 6 38
op 3 classes 40 118 0 0 combined 0 ab 0 clusters 4 39 40 40 39 lat 2 1 40 5 118
op 9 classes 40 118 0 0 combined 0 ab 0 clusters 4 39 39 40 40 lat 1 1 158
op 10 classes 40 118 0 0 combined 0 ab 0 clusters 4 40 40 40 38 lat 1 1 158
endloop
loop g721enc_l4 fp 5af6ff85fcb52bb1 ops 17 mem 8
op 0 classes 44 126 0 0 combined 63 ab 0 clusters 4 42 42 42 44 lat 15 1 44 2 1 3 1 4 2 5 2 6 5 7 2 8 9 9 18 10 32 11 2 12 7 13 3 14 27 15 15
op 1 classes 43 127 0 0 combined 4 ab 0 clusters 4 42 43 43 42 lat 15 1 43 2 2 5 1 6 2 7 1 8 4 9 5 10 8 11 7 12 6 13 6 14 33 15 27 16 24 17 1
op 2 classes 43 127 0 0 combined 63 ab 0 clusters 4 43 42 42 43 lat 13 1 45 3 1 5 7 7 6 8 4 9 8 10 13 11 21 12 4 13 18 15 29 16 2 17 12
op 3 classes 43 127 0 0 combined 67 ab 0 clusters 4 42 43 43 42 lat 16 1 47 2 1 4 1 5 7 6 5 7 3 8 4 9 4 10 19 11 5 12 29 13 1 14 16 15 2 16 25 17 1
op 4 classes 43 127 0 0 combined 0 ab 0 clusters 4 42 42 43 43 lat 13 1 43 5 1 7 3 8 2 9 3 10 8 11 6 12 9 13 4 14 46 15 6 16 26 17 13
op 5 classes 44 126 0 0 combined 63 ab 0 clusters 4 42 42 44 42 lat 15 1 47 2 1 5 8 6 2 7 4 8 5 9 8 10 25 11 7 12 5 13 17 14 11 15 16 16 1 17 13
op 15 classes 44 126 0 0 combined 0 ab 0 clusters 4 42 42 42 44 lat 1 1 170
op 16 classes 44 126 0 0 combined 0 ab 0 clusters 4 42 44 42 42 lat 1 1 170
endloop
loop g721enc_l5 fp 27134760e659e8ce ops 12 mem 6
op 0 classes 27 79 0 0 combined 39 ab 0 clusters 4 27 26 26 27 lat 2 1 66 5 40
op 1 classes 27 79 0 0 combined 0 ab 0 clusters 4 26 27 27 26 lat 3 1 27 5 55 6 24
op 2 classes 27 79 0 0 combined 0 ab 0 clusters 4 27 27 26 26 lat 2 1 27 5 79
op 3 classes 28 78 0 0 combined 39 ab 0 clusters 4 26 26 28 26 lat 4 1 55 2 12 5 27 6 12
op 10 classes 27 79 0 0 combined 0 ab 0 clusters 4 27 27 26 26 lat 1 1 106
op 11 classes 28 78 0 0 combined 0 ab 0 clusters 4 26 26 26 28 lat 1 1 106
endloop
loop gsmdec_l0 fp b0e103b1b470e347 ops 6 mem 3
op 0 classes 109 324 0 0 combined 81 ab 0 clusters 4 109 108 108 108 lat 3 1 109 2 81 5 243
op 1 classes 94 289 14 36 combined 171 ab 0 clusters 4 108 108 109 108 lat 8 1 98 2 140 4 2 5 143 7 7 10 7 12 18 15 18
op 5 classes 97 292 11 33 combined 0 ab 0 clusters 4 108 108 108 109 lat 1 1 433
endloop
loop gsmdec_l1 fp d1892cbd9908fc81 ops 9 mem 5
op 0 classes 80 242 48 142 combined 99 ab 0 clusters 4 128 128 128 128 lat 10 1 83 2 1 5 257 6 4 7 1 9 4 10 85 11 6 15 64 16 7
op 1 classes 78 240 50 144 combined 97 ab 0 clusters 4 128 128 128 128 lat 10 1 78 5 258 6 6 7 1 10 95 11 1 12 1 15 70 16 1 17 1
op 2 classes 112 338 16 46 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 112 5 338 10 16 15 43 16 2 17 1
op 7 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 8 classes 119 357 9 27 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop gsmdec_l2 fp 337bc0ba1bba2cb6 ops 14 mem 7
op 0 classes 52 154 0 0 combined 54 ab 0 clusters 4 51 52 52 51 lat 14 1 74 2 15 3 17 5 3 6 2 9 3 11 20 12 2 13 30 14 22 15 9 16 7 17 1 18 1
op 1 classes 52 154 0 0 combined 76 ab 0 clusters 4 51 51 52 52 lat 14 1 52 2 1 4 1 5 2 7 3 8 10 9 24 10 16 11 10 12 32 13 30 15 17 16 7 18 1
op 2 classes 52 154 0 0 combined 76 ab 0 clusters 4 51 51 52 52 lat 16 1 52 2 2 3 2 5 3 6 2 7 1 8 16 9 24 10 15 11 16 12 33 13 22 14 8 15 1 16 8 18 1
op 3 classes 52 154 0 0 combined 70 ab 0 clusters 4 52 52 51 51 lat 16 1 53 2 30 3 22 4 16 5 4 6 3 7 2 10 1 12 4 13 2 14 30 15 22 16 7 17 8 18 1 19 1
op 4 classes 52 154 0 0 combined 76 ab 0 clusters 4 51 52 52 51 lat 17 1 52 2 3 4 1 5 4 6 1 7 1 8 1 9 1 10 15 11 24 12 16 13 30 14 17 15 24 16 14 17 1 18 1
op 12 classes 52 154 0 0 combined 0 ab 0 clusters 4 50 52 52 52 lat 1 1 206
op 13 classes 52 154 0 0 combined 0 ab 0 clusters 4 52 52 50 52 lat 1 1 206
endloop
loop gsmdec_l3 fp 3b28b589c0af1cb5 ops 13 mem 7
op 0 classes 126 374 2 10 combined 4 ab 0 clusters 4 128 128 128 128 lat 6 1 126 4 2 5 374 8 2 10 2 15 6
op 1 classes 112 302 16 82 combined 34 ab 0 clusters 4 128 128 128 128 lat 6 1 112 4 18 5 302 8 16 10 16 15 48
op 2 classes 124 358 4 26 combined 13 ab 0 clusters 4 128 128 128 128 lat 6 1 124 4 9 5 358 8 4 10 4 15 13
op 3 classes 115 345 13 39 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 115 5 345 10 13 15 39
op 4 classes 123 354 5 30 combined 15 ab 0 clusters 4 128 128 128 128 lat 6 1 123 4 10 5 354 8 5 10 5 15 15
op 11 classes 115 345 13 39 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 12 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop gsmdec_l4 fp 505beeef9766b42e ops 8 mem 4
op 0 classes 96 289 32 95 combined 207 ab 0 clusters 4 128 128 128 128 lat 6 1 240 5 145 6 16 10 16 11 47 15 48
op 1 classes 112 340 16 44 combined 199 ab 0 clusters 4 128 128 128 128 lat 6 1 281 5 171 6 8 10 8 11 22 15 22
op 2 classes 96 288 32 96 combined 208 ab 0 clusters 4 128 128 128 128 lat 6 1 240 5 144 6 16 10 16 11 48 15 48
op 7 classes 121 363 7 21 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop gsmdec_l5 fp 82bcb33dacd68ea2 ops 13 mem 5
op 0 classes 86 258 22 63 combined 53 ab 0 clusters 4 108 108 107 106 lat 10 1 86 2 11 5 236 6 11 7 11 8 10 10 22 12 10 15 21 17 11
op 1 classes 106 322 0 1 combined 21 ab 0 clusters 4 106 108 108 107 lat 4 1 127 5 280 6 21 16 1
op 2 classes 87 256 20 66 combined 54 ab 0 clusters 4 107 108 108 106 lat 8 1 98 5 244 6 11 9 11 10 21 11 11 15 22 16 11
op 3 classes 106 323 0 0 combined 22 ab 0 clusters 4 106 107 108 108 lat 3 1 128 5 279 6 22
op 12 classes 104 309 4 12 combined 0 ab 0 clusters 4 108 107 106 108 lat 1 1 429
endloop
loop gsmdec_l6 fp 84411c5adc4e4299 ops 13 mem 5
op 0 classes 109 299 15 76 combined 30 ab 0 clusters 4 124 124 125 126 lat 6 1 109 4 7 5 299 8 23 10 15 15 46
op 1 classes 107 324 17 51 combined 0 ab 0 clusters 4 124 125 125 125 lat 4 1 107 5 324 10 17 15 51
op 2 classes 94 285 30 90 combined 0 ab 0 clusters 4 124 125 125 125 lat 4 1 94 5 285 10 30 15 90
op 3 classes 109 299 15 76 combined 29 ab 0 clusters 4 124 124 126 125 lat 5 1 109 4 29 5 299 10 15 15 47
op 12 classes 125 374 0 0 combined 0 ab 0 clusters 4 125 124 124 126 lat 1 1 499
endloop
loop gsmdec_l7 fp f948e8900e656991 ops 13 mem 7
op 0 classes 97 257 11 66 combined 33 ab 0 clusters 4 108 108 108 107 lat 6 1 97 4 22 5 257 8 11 10 11 15 33
op 1 classes 108 323 0 0 combined 0 ab 0 clusters 4 108 108 108 107 lat 3 1 108 5 301 6 22
op 2 classes 97 259 11 64 combined 32 ab 0 clusters 4 108 108 107 108 lat 6 1 97 4 21 5 259 8 11 10 11 15 32
op 3 classes 93 240 14 84 combined 42 ab 0 clusters 4 107 108 108 108 lat 7 1 93 3 14 4 14 5 240 8 14 10 14 15 42
op 4 classes 107 324 0 0 combined 0 ab 0 clusters 4 107 108 108 108 lat 3 1 107 5 310 6 14
op 11 classes 94 282 14 41 combined 0 ab 0 clusters 4 108 108 108 107 lat 1 1 431
op 12 classes 96 287 12 36 combined 0 ab 0 clusters 4 108 108 108 107 lat 1 1 431
endloop
loop gsmenc_l0 fp aeb8694045b0795e ops 9 mem 3
op 0 classes 94 285 32 94 combined 205 ab 0 clusters 4 126 126 127 126 lat 7 1 94 2 142 5 143 7 16 10 16 12 47 15 47
op 1 classes 108 325 18 54 combined 198 ab 0 clusters 4 126 126 127 126 lat 7 1 108 2 162 5 163 7 9 10 9 12 27 15 27
op 8 classes 117 348 10 30 combined 0 ab 0 clusters 4 127 126 126 126 lat 1 1 505
endloop
loop gsmenc_l1 fp 7fa716598340404f ops 11 mem 5
op 0 classes 122 359 6 25 combined 9 ab 0 clusters 4 128 128 128 128 lat 5 1 122 4 9 5 359 10 6 15 16
op 1 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 112 5 336 10 16 15 48
op 2 classes 80 240 48 144 combined 2 ab 0 clusters 4 128 128 128 128 lat 5 1 80 4 2 5 238 10 48 15 144
op 3 classes 124 375 4 9 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 124 5 375 10 4 15 9
op 10 classes 121 363 7 21 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop gsmenc_l2 fp 3c8650da0628f349 ops 6 mem 3
op 0 classes 58 170 0 0 combined 29 ab 0 clusters 4 56 56 58 58 lat 2 1 87 5 141
op 1 classes 58 170 0 0 combined 0 ab 0 clusters 4 58 56 56 58 lat 2 1 58 5 170
op 5 classes 57 171 0 0 combined 0 ab 0 clusters 4 57 58 57 56 lat 1 1 228
endloop
loop gsmenc_l3 fp 37b0f25d644d5518 ops 17 mem 8
op 0 classes 66 201 4 9 combined 6 ab 0 clusters 4 70 70 70 70 lat 9 1 66 2 2 5 201 6 1 7 2 8 1 10 2 15 3 17 2
op 1 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 4 1 70 5 206 6 2 7 2
op 2 classes 66 198 4 12 combined 8 ab 0 clusters 4 70 70 70 70 lat 8 1 66 2 2 5 198 7 4 8 2 10 2 15 4 16 2
op 3 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 3 1 70 5 206 7 4
op 4 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 4 1 70 5 202 6 2 7 6
op 5 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 3 1 70 5 204 7 6
op 15 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 1 1 280
op 16 classes 70 210 0 0 combined 0 ab 0 clusters 4 70 70 70 70 lat 1 1 280
endloop
loop gsmenc_l4 fp 90d5d9065d34d709 ops 13 mem 6
op 0 classes 128 384 0 0 combined 22 ab 0 clusters 4 128 128 128 128 lat 8 1 139 2 1 3 10 5 313 6 5 7 33 8 1 9 10
op 1 classes 128 384 0 0 combined 13 ab 0 clusters 4 128 128 128 128 lat 5 1 141 5 296 6 49 7 16 10 10
op 2 classes 96 288 32 96 combined 64 ab 0 clusters 4 128 128 128 128 lat 15 1 96 4 16 5 276 6 12 7 11 9 21 10 16 11 5 13 1 14 10 15 27 16 5 17 5 19 1 20 10
op 3 classes 126 378 2 6 combined 4 ab 0 clusters 4 128 128 128 128 lat 9 1 126 4 1 5 322 6 45 8 11 9 2 10 2 15 1 16 2
op 4 classes 105 317 23 67 combined 6 ab 0 clusters 4 128 128 128 128 lat 9 1 107 3 2 5 292 6 22 10 23 12 1 15 32 16 22 17 11
op 12 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop gsmenc_l5 fp d184af549ea2889b ops 13 mem 6
op 0 classes 102 303 12 37 combined 0 ab 0 clusters 4 114 113 113 114 lat 5 1 102 5 291 7 12 10 12 15 37
op 1 classes 89 265 25 75 combined 0 ab 0 clusters 4 114 114 113 113 lat 5 1 89 5 253 7 12 10 25 15 75
op 2 classes 114 340 0 0 combined 0 ab 0 clusters 4 114 113 113 114 lat 2 1 114 5 340
op 3 classes 114 340 0 0 combined 0 ab 0 clusters 4 114 112 114 114 lat 4 1 114 5 316 6 12 7 12
op 4 classes 114 340 0 0 combined 0 ab 0 clusters 4 114 112 114 114 lat 2 1 114 5 340
op 12 classes 102 304 12 36 combined 0 ab 0 clusters 4 114 114 114 112 lat 1 1 454
endloop
loop gsmenc_l6 fp 508ab8e88a6a241a ops 7 mem 3
op 0 classes 68 192 5 24 combined 12 ab 0 clusters 4 73 72 72 72 lat 5 1 68 3 12 5 192 10 5 15 12
op 1 classes 68 205 4 12 combined 110 ab 0 clusters 4 72 72 73 72 lat 7 1 68 2 102 5 103 7 2 10 2 12 6 15 6
op 6 classes 70 211 2 6 combined 0 ab 0 clusters 4 72 72 73 72 lat 1 1 289
endloop
loop gsmenc_l7 fp f4a6891416ff5f46 ops 16 mem 8
op 0 classes 89 266 39 118 combined 78 ab 0 clusters 4 128 128 128 128 lat 9 1 91 2 17 5 259 6 7 7 43 8 16 10 20 15 43 16 16
op 1 classes 120 366 8 18 combined 13 ab 0 clusters 4 128 128 128 128 lat 7 1 120 2 4 5 357 6 7 7 11 10 4 15 9
op 2 classes 96 288 32 96 combined 64 ab 0 clusters 4 128 128 128 128 lat 9 1 96 2 16 5 247 6 22 7 65 8 2 10 16 15 46 16 2
op 3 classes 96 288 32 96 combined 64 ab 0 clusters 4 128 128 128 128 lat 10 1 96 2 16 5 260 6 7 7 53 8 1 9 15 10 16 15 33 17 15
op 4 classes 121 365 7 19 combined 0 ab 0 clusters 4 128 128 128 128 lat 9 1 121 5 332 6 30 7 3 10 7 15 11 16 6 17 1 18 1
op 5 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 5 1 128 5 276 6 56 7 32 8 20
op 14 classes 90 274 38 110 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 15 classes 108 322 20 62 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l0 fp 72a31764531876b9 ops 11 mem 4
op 0 classes 120 376 8 8 combined 2 ab 0 clusters 4 128 128 128 128 lat 8 1 120 3 2 5 368 6 3 7 3 10 8 15 7 16 1
op 1 classes 104 288 24 96 combined 232 ab 0 clusters 4 128 128 128 128 lat 9 1 248 2 8 3 24 5 144 6 8 7 24 10 8 11 24 15 24
op 2 classes 115 380 2 15 combined 4 ab 0 clusters 4 117 123 142 130 lat 7 1 116 3 3 5 372 6 4 10 2 15 14 17 1
op 10 classes 120 360 8 24 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l1 fp 6815582bb72a2c38 ops 9 mem 3
op 0 classes 64 192 64 192 combined 64 ab 0 clusters 4 128 128 128 128 lat 7 1 64 4 16 5 192 9 48 10 48 15 136 16 8
op 1 classes 96 289 32 95 combined 207 ab 0 clusters 4 128 128 128 128 lat 7 1 96 2 144 5 145 7 16 10 16 12 47 15 48
op 8 classes 124 372 4 12 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l2 fp 781d6154fde744cf ops 15 mem 7
op 0 classes 120 333 8 51 combined 87 ab 0 clusters 4 128 128 128 128 lat 20 1 150 2 14 3 11 4 8 5 155 6 59 7 43 8 15 9 16 10 12 11 6 12 1 13 3 14 1 15 4 16 4 17 5 19 2 20 2 22 1
op 1 classes 105 315 23 69 combined 0 ab 0 clusters 4 128 128 128 128 lat 18 1 105 5 150 6 62 7 43 8 28 9 19 10 31 11 2 12 1 13 1 14 1 15 28 16 18 17 11 18 6 19 2 20 3 22 1
op 2 classes 91 241 57 123 combined 1 ab 0 clusters 4 148 135 107 122 lat 18 1 92 5 87 6 66 7 30 8 25 9 17 10 64 11 5 12 1 14 2 15 41 16 27 17 25 18 13 19 8 20 5 21 3 22 1
op 3 classes 91 277 34 110 combined 0 ab 0 clusters 4 125 125 124 138 lat 16 1 91 5 144 6 50 7 45 8 16 9 9 10 41 11 3 12 2 13 1 15 62 16 17 17 14 18 7 19 9 20 1
op 4 classes 124 379 4 5 combined 0 ab 0 clusters 4 128 128 128 128 lat 14 1 124 5 112 6 103 7 69 8 42 9 29 10 19 11 5 12 2 13 1 14 1 15 3 16 1 24 1
op 13 classes 118 350 10 34 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 14 classes 124 370 4 14 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l3 fp bf7c895762841453 ops 11 mem 5
op 0 classes 96 289 32 95 combined 207 ab 0 clusters 4 128 128 128 128 lat 17 1 176 2 60 3 2 4 2 5 81 6 76 7 2 8 2 10 16 11 17 12 22 13 1 14 7 15 17 16 23 17 1 18 7
op 1 classes 128 384 0 0 combined 191 ab 0 clusters 4 128 128 128 128 lat 4 1 314 2 5 5 188 6 5
op 2 classes 119 269 29 95 combined 1 ab 0 clusters 4 122 148 135 107 lat 7 1 120 5 260 6 8 10 29 15 87 16 6 17 2
op 3 classes 128 378 0 6 combined 192 ab 0 clusters 4 128 128 128 128 lat 6 1 299 2 7 3 14 5 171 6 7 7 14
op 10 classes 123 369 5 15 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l4 fp 160cd3f72205b137 ops 16 mem 7
op 0 classes 52 150 0 0 combined 23 ab 0 clusters 4 50 52 50 50 lat 7 1 61 2 10 3 4 5 77 6 20 7 25 8 5
op 1 classes 55 147 0 0 combined 2 ab 0 clusters 4 55 51 39 57 lat 7 1 56 2 1 5 52 6 42 7 22 8 28 9 1
op 2 classes 59 143 0 0 combined 0 ab 0 clusters 4 59 46 38 59 lat 5 1 59 5 77 6 36 7 21 8 9
op 3 classes 52 150 0 0 combined 21 ab 0 clusters 4 52 52 50 48 lat 7 1 61 2 10 3 2 5 93 6 18 7 16 8 2
op 4 classes 52 150 0 0 combined 53 ab 0 clusters 4 48 51 52 51 lat 7 1 80 2 15 3 10 5 39 6 33 7 15 8 10
op 14 classes 52 150 0 0 combined 0 ab 0 clusters 4 52 51 48 51 lat 1 1 202
op 15 classes 51 151 0 0 combined 0 ab 0 clusters 4 51 51 50 50 lat 1 1 202
endloop
loop jpegdec_l5 fp 4a6ff0c3529f2c9a ops 13 mem 5
op 0 classes 108 316 20 68 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 108 5 316 10 20 15 68
op 1 classes 117 361 11 23 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 117 5 361 10 11 15 23
op 2 classes 120 296 23 73 combined 0 ab 0 clusters 4 128 129 112 143 lat 4 1 120 5 296 10 23 15 73
op 3 classes 99 329 18 66 combined 0 ab 0 clusters 4 133 127 117 135 lat 4 1 99 5 329 10 18 15 66
op 12 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l6 fp 36a7530fa640d7db ops 17 mem 7
op 0 classes 120 343 8 41 combined 54 ab 0 clusters 4 128 128 128 128 lat 16 1 140 2 8 3 10 4 2 5 192 6 56 7 36 8 26 9 8 10 13 11 5 12 2 15 6 16 4 17 3 18 1
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 9 1 128 5 252 6 56 7 39 8 15 9 8 10 7 11 4 12 3
op 2 classes 0 507 0 5 combined 0 ab 0 clusters 4 0 256 0 256 lat 13 5 296 6 85 7 57 8 37 9 15 10 6 11 7 12 3 13 1 15 2 16 1 18 1 19 1
op 3 classes 112 323 16 61 combined 1 ab 0 clusters 4 128 128 128 128 lat 15 1 113 5 164 6 64 7 56 8 18 9 9 10 20 11 6 13 1 15 34 16 12 17 10 18 1 19 3 21 1
op 4 classes 74 253 44 141 combined 0 ab 0 clusters 4 118 125 135 134 lat 17 1 74 5 124 6 49 7 50 8 17 9 2 10 48 11 6 14 1 15 54 16 29 17 30 18 11 19 7 20 3 21 4 22 3
op 5 classes 116 360 12 24 combined 2 ab 0 clusters 4 128 128 128 128 lat 17 1 117 2 1 5 201 6 59 7 53 8 22 9 9 10 19 11 5 12 2 15 12 16 4 17 3 19 1 20 2 21 1 22 1
op 16 classes 127 383 1 1 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegdec_l7 fp 567c94c0d061303f ops 7 mem 4
op 0 classes 60 170 0 0 combined 85 ab 0 clusters 4 60 56 56 58 lat 3 1 60 2 85 5 85
op 1 classes 58 172 0 0 combined 0 ab 0 clusters 4 58 58 57 57 lat 2 1 58 5 172
op 5 classes 0 230 0 0 combined 0 ab 0 clusters 4 0 115 0 115 lat 1 1 230
op 6 classes 58 172 0 0 combined 0 ab 0 clusters 4 57 58 58 57 lat 1 1 230
endloop
loop jpegenc_l0 fp 563b0a9dc819a49b ops 9 mem 3
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 289 6 95
op 1 classes 256 256 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 4 1 256 5 34 6 190 7 32
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegenc_l1 fp 944dd65b024006ab ops 9 mem 4
op 0 classes 120 362 0 0 combined 180 ab 0 clusters 4 120 120 121 121 lat 5 1 295 2 1 4 4 5 171 6 11
op 1 classes 92 278 28 84 combined 184 ab 0 clusters 4 120 121 121 120 lat 6 1 220 5 140 6 24 10 14 11 42 15 42
op 2 classes 98 296 22 66 combined 0 ab 0 clusters 4 120 120 121 121 lat 7 1 98 5 273 6 22 7 1 10 22 15 56 16 10
op 8 classes 113 341 7 21 combined 0 ab 0 clusters 4 120 120 120 122 lat 1 1 482
endloop
loop jpegenc_l2 fp 8c1412a9591dc3a3 ops 17 mem 8
op 0 classes 128 384 0 0 combined 5 ab 0 clusters 4 128 128 128 128 lat 5 1 128 3 5 5 194 6 155 7 30
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 354 6 30
op 2 classes 256 256 0 0 combined 5 ab 0 clusters 4 256 0 256 0 lat 4 1 260 2 1 5 221 6 30
op 3 classes 96 288 32 96 combined 0 ab 0 clusters 4 128 128 128 128 lat 7 1 96 5 258 6 30 10 32 15 65 16 30 17 1
op 4 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 2 1 256 5 256
op 5 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 352 6 32
op 15 classes 256 256 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 1 1 512
op 16 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegenc_l3 fp 70e06fa8fa0bbe60 ops 10 mem 5
op 0 classes 256 255 0 1 combined 0 ab 0 clusters 4 256 0 256 0 lat 3 1 256 5 255 15 1
op 1 classes 127 380 1 4 combined 1 ab 0 clusters 4 128 128 128 128 lat 5 1 127 3 1 5 379 10 1 15 4
op 2 classes 94 255 48 115 combined 0 ab 0 clusters 4 117 123 142 130 lat 4 1 94 5 255 10 48 15 115
op 3 classes 127 380 1 4 combined 385 ab 0 clusters 4 128 128 128 128 lat 5 1 127 2 1 4 379 9 1 14 4
op 9 classes 124 349 4 35 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegenc_l4 fp 1d8cb772f08d7506 ops 12 mem 6
op 0 classes 0 80 0 0 combined 0 ab 0 clusters 4 0 40 0 40 lat 1 5 80
op 1 classes 20 60 0 0 combined 2 ab 0 clusters 4 20 20 20 20 lat 3 1 20 4 2 5 58
op 2 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 3 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 4 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 11 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 1 1 80
endloop
loop jpegenc_l5 fp f765a7ebdfbc3d8e ops 12 mem 5
op 0 classes 97 288 31 96 combined 35 ab 0 clusters 4 128 128 128 128 lat 5 1 98 4 4 5 291 10 47 15 72
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 2 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 3 classes 126 378 2 6 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 126 5 378 10 2 15 6
op 11 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop jpegenc_l6 fp 1524d9c17b0fcff9 ops 15 mem 7
op 0 classes 35 106 0 0 combined 0 ab 0 clusters 4 35 36 35 35 lat 2 1 35 5 106
op 1 classes 38 96 1 6 combined 0 ab 0 clusters 4 36 31 35 39 lat 4 1 38 5 96 10 1 15 6
op 2 classes 36 105 0 0 combined 0 ab 0 clusters 4 35 35 36 35 lat 3 1 36 5 91 6 14
op 3 classes 0 141 0 0 combined 1 ab 0 clusters 4 0 70 0 71 lat 2 3 1 5 140
op 4 classes 40 96 0 5 combined 0 ab 0 clusters 4 42 25 40 34 lat 3 1 40 5 96 15 5
op 5 classes 34 101 1 5 combined 0 ab 0 clusters 4 35 35 35 36 lat 4 1 34 5 101 10 1 15 5
op 14 classes 36 105 0 0 combined 0 ab 0 clusters 4 35 35 36 35 lat 1 1 141
endloop
loop jpegenc_l7 fp f6c3bf8766f2f788 ops 8 mem 4
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 96 288 32 96 combined 207 ab 0 clusters 4 128 128 128 128 lat 6 1 239 5 145 6 16 10 16 11 48 15 48
op 6 classes 120 360 8 24 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 7 classes 96 288 32 96 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop mpeg2dec_l0 fp fec580790b2eaae1 ops 14 mem 7
op 0 classes 0 512 0 0 combined 255 ab 0 clusters 4 0 0 512 0 lat 21 5 3 6 3 7 1 8 3 9 30 10 2 12 92 13 33 14 67 15 1 16 27 17 30 18 2 19 29 20 29 21 36 22 31 23 61 24 29 25 1 26 2
op 1 classes 0 495 0 17 combined 255 ab 0 clusters 4 0 256 0 256 lat 25 1 27 2 33 3 32 4 63 5 3 6 2 8 28 9 2 10 31 11 33 13 2 14 29 15 3 16 3 17 28 18 32 19 31 20 27 22 62 23 2 24 31 25 1 26 4 27 1 30 2
op 2 classes 103 359 25 25 combined 4 ab 0 clusters 4 128 128 128 128 lat 23 1 103 3 1 7 1 8 1 10 2 11 1 12 5 13 3 14 27 15 32 16 28 17 64 18 93 19 26 20 3 21 2 22 60 23 4 24 29 25 1 26 1 35 24 37 1
op 3 classes 96 294 32 90 combined 3 ab 0 clusters 4 128 128 128 128 lat 28 1 96 5 1 10 3 11 1 13 1 14 30 15 1 16 33 17 29 18 5 19 3 20 32 21 31 22 94 23 29 24 33 25 1 26 1 27 1 29 26 31 5 32 1 33 25 34 1 35 2 36 25 37 1 38 1
op 4 classes 0 512 0 0 combined 256 ab 0 clusters 4 0 0 512 0 lat 19 3 1 5 1 6 2 7 30 8 2 9 28 10 3 11 37 12 5 13 65 14 31 15 84 16 38 17 4 18 64 20 86 21 1 22 29 24 1
op 5 classes 0 512 0 0 combined 256 ab 0 clusters 4 512 0 0 0 lat 19 4 1 8 1 9 3 10 30 12 3 13 3 14 60 15 5 16 67 17 88 18 31 19 33 20 3 21 67 22 55 23 31 24 3 26 1 27 27
op 13 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 0 512 0 lat 1 1 512
endloop
loop mpeg2dec_l1 fp c87dd0354e527d11 ops 9 mem 4
op 0 classes 0 512 0 0 combined 132 ab 0 clusters 4 256 0 256 0 lat 17 2 2 3 17 4 95 5 5 6 8 7 91 8 18 9 47 10 49 11 13 12 109 13 2 14 13 16 22 17 7 18 6 19 8
op 1 classes 0 386 0 126 combined 157 ab 0 clusters 4 256 0 256 0 lat 24 2 4 3 89 5 4 6 45 7 10 8 46 9 52 10 6 11 140 12 19 13 6 15 17 16 1 17 10 18 3 21 5 22 6 23 4 24 6 25 11 26 9 27 5 28 8 29 6
op 2 classes 128 384 0 0 combined 190 ab 0 clusters 4 128 128 128 128 lat 17 1 128 2 6 3 88 4 5 5 16 6 51 7 92 8 2 9 21 10 63 11 10 13 5 14 10 15 1 16 6 17 6 18 2
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop mpeg2dec_l2 fp 3ea3ad3dcd479d13 ops 11 mem 5
op 0 classes 128 383 0 1 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 383 15 1
op 1 classes 0 416 0 96 combined 0 ab 0 clusters 4 0 256 0 256 lat 6 5 98 6 317 8 1 15 33 16 33 18 30
op 2 classes 0 504 0 8 combined 0 ab 0 clusters 4 256 0 256 0 lat 5 6 414 7 61 9 29 16 5 19 3
op 9 classes 0 428 0 84 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
op 10 classes 0 512 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
endloop
loop mpeg2dec_l3 fp c036bc5aea62a982 ops 9 mem 4
op 0 classes 0 512 0 0 combined 126 ab 0 clusters 4 256 0 256 0 lat 9 2 63 3 63 5 6 6 1 7 64 8 63 9 126 10 63 11 63
op 1 classes 0 512 0 0 combined 512 ab 0 clusters 4 256 0 256 0 lat 9 1 63 2 63 4 6 5 1 6 64 7 63 8 126 9 63 10 63
op 7 classes 0 512 0 0 combined 0 ab 0 clusters 4 512 0 0 0 lat 1 1 512
op 8 classes 0 512 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
endloop
loop mpeg2dec_l4 fp 3d3ffd0fa8f42633 ops 14 mem 6
op 0 classes 0 512 0 0 combined 509 ab 0 clusters 4 256 0 256 0 lat 16 1 2 2 122 3 1 4 6 5 2 6 62 7 1 10 60 12 1 13 2 14 63 15 2 16 124 17 2 18 61 20 1
op 1 classes 0 512 0 0 combined 189 ab 0 clusters 4 256 0 256 0 lat 15 1 123 3 3 4 2 5 64 6 1 10 61 11 1 12 2 13 63 14 1 15 124 16 2 17 61 18 3 19 1
op 2 classes 0 512 0 0 combined 257 ab 0 clusters 4 512 0 0 0 lat 18 1 1 3 2 4 1 5 62 6 1 7 2 8 2 9 62 10 63 11 122 12 2 13 1 14 1 15 5 16 61 17 120 18 3 19 1
op 3 classes 0 512 0 0 combined 195 ab 0 clusters 4 256 0 256 0 lat 17 1 3 2 2 3 122 4 1 5 6 6 1 7 62 8 1 11 60 13 1 14 2 15 63 16 2 17 123 18 2 19 60 21 1
op 12 classes 0 512 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
op 13 classes 0 512 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
endloop
loop mpeg2dec_l5 fp 88aef7bc9e9ecf10 ops 12 mem 5
op 0 classes 0 505 0 7 combined 5 ab 0 clusters 4 256 0 256 0 lat 8 4 5 5 404 6 8 7 2 9 77 12 4 15 5 19 7
op 1 classes 0 502 0 10 combined 0 ab 0 clusters 4 256 0 256 0 lat 9 5 6 7 8 8 393 9 7 10 79 13 4 18 5 19 5 20 5
op 2 classes 0 501 0 11 combined 4 ab 0 clusters 4 512 0 0 0 lat 6 5 415 6 2 8 79 10 4 11 5 15 7
op 3 classes 89 267 39 117 combined 0 ab 0 clusters 4 128 128 128 128 lat 10 1 89 7 3 9 172 10 40 12 72 14 3 15 12 18 1 19 115 21 5
op 11 classes 0 512 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
endloop
loop mpeg2dec_l6 fp 870f05276bf7467c ops 13 mem 6
op 0 classes 0 511 0 0 combined 252 ab 0 clusters 4 255 0 256 0 lat 15 5 1 8 59 9 65 10 2 11 126 13 1 15 1 20 1 23 60 24 59 25 2 26 124 27 2 28 2 29 6
op 1 classes 0 511 0 0 combined 124 ab 0 clusters 4 0 255 0 256 lat 13 7 1 9 123 10 1 12 1 17 1 22 1 23 1 24 241 25 1 26 124 27 6 28 4 29 6
op 2 classes 0 511 0 0 combined 0 ab 0 clusters 4 256 0 255 0 lat 10 7 1 12 1 17 1 22 1 23 120 25 245 26 122 27 7 28 10 30 3
op 3 classes 0 511 0 0 combined 252 ab 0 clusters 4 255 0 256 0 lat 13 5 2 6 61 7 62 8 120 10 9 15 1 20 1 24 62 25 59 26 122 27 3 28 6 30 3
op 11 classes 0 511 0 0 combined 0 ab 0 clusters 4 255 0 256 0 lat 1 1 511
op 12 classes 0 511 0 0 combined 0 ab 0 clusters 4 256 0 255 0 lat 1 1 511
endloop
loop mpeg2dec_l7 fp d8060f98f2b2f15d ops 9 mem 5
op 0 classes 0 458 0 0 combined 224 ab 0 clusters 4 229 0 229 0 lat 13 4 110 5 4 6 1 8 2 9 111 10 2 12 1 14 111 17 1 19 111 20 2 23 1 25 1
op 1 classes 0 458 0 0 combined 226 ab 0 clusters 4 229 0 229 0 lat 14 2 111 4 1 6 1 7 112 9 2 11 1 12 1 13 1 15 113 17 111 18 1 20 1 23 1 24 1
op 2 classes 0 458 0 0 combined 226 ab 0 clusters 4 229 0 229 0 lat 14 1 111 5 1 6 111 7 1 8 2 9 1 10 1 11 1 13 1 14 113 16 111 18 1 19 1 22 2
op 7 classes 0 458 0 0 combined 0 ab 0 clusters 4 229 0 229 0 lat 1 1 458
op 8 classes 0 458 0 0 combined 0 ab 0 clusters 4 229 0 229 0 lat 1 1 458
endloop
loop pegwitdec_l0 fp e477d6bfb2919d52 ops 10 mem 4
op 0 classes 126 374 2 10 combined 39 ab 0 clusters 4 128 128 128 128 lat 7 1 159 2 2 5 341 7 3 10 1 11 1 15 5
op 1 classes 98 292 38 84 combined 0 ab 0 clusters 4 136 101 133 142 lat 4 1 98 5 292 10 38 15 84
op 8 classes 115 356 13 28 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 9 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitdec_l1 fp 7ff831aaec0bd9e3 ops 11 mem 5
op 0 classes 110 328 18 56 combined 19 ab 0 clusters 4 128 128 128 128 lat 28 1 113 2 1 3 3 4 2 5 36 6 20 7 29 8 34 9 34 10 49 11 29 12 32 13 22 14 31 15 17 16 13 17 8 18 11 19 6 20 4 21 4 22 2 23 4 24 4 25 1 27 1 30 1 34 1
op 1 classes 73 317 28 94 combined 1 ab 0 clusters 4 101 133 142 136 lat 27 1 73 5 37 6 19 7 33 8 30 9 35 10 54 11 32 12 24 13 29 14 24 15 25 16 8 17 13 18 8 19 14 20 10 21 8 22 10 23 8 24 2 25 3 26 4 27 5 28 2 29 1 31 1
op 2 classes 115 283 28 86 combined 0 ab 0 clusters 4 112 143 128 129 lat 25 1 115 5 35 6 27 7 15 8 31 9 30 10 60 11 30 12 22 13 18 14 20 15 14 16 11 17 12 18 9 19 15 20 11 21 9 22 10 23 5 24 5 25 3 26 1 27 3 30 1
op 3 classes 117 315 16 64 combined 5 ab 0 clusters 4 133 127 117 135 lat 29 1 118 2 1 3 1 4 1 5 27 6 19 7 27 8 21 9 37 10 41 11 31 12 20 13 34 14 27 15 17 16 12 17 12 18 11 19 8 20 7 21 5 22 6 23 8 24 9 25 3 26 3 27 1 28 3 29 2
op 10 classes 102 312 26 72 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitdec_l2 fp 10469daa4d2e653c ops 13 mem 5
op 0 classes 38 110 0 0 combined 0 ab 0 clusters 4 37 38 37 36 lat 2 1 38 5 110
op 1 classes 43 105 0 0 combined 0 ab 0 clusters 4 29 43 39 37 lat 2 1 43 5 105
op 2 classes 46 102 0 0 combined 0 ab 0 clusters 4 22 46 46 34 lat 2 1 46 5 102
op 3 classes 31 117 0 0 combined 1 ab 0 clusters 4 40 31 43 34 lat 3 1 31 4 1 5 116
op 12 classes 37 111 0 0 combined 0 ab 0 clusters 4 38 37 36 37 lat 1 1 148
endloop
loop pegwitdec_l3 fp 6e2a417777c962f4 ops 14 mem 6
op 0 classes 90 270 38 114 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 90 5 270 10 38 15 114
op 1 classes 124 315 18 55 combined 0 ab 0 clusters 4 142 136 101 133 lat 4 1 124 5 315 10 18 15 55
op 2 classes 124 313 19 56 combined 0 ab 0 clusters 4 128 129 112 143 lat 6 1 124 5 259 6 54 10 19 15 46 16 10
op 3 classes 95 331 22 64 combined 0 ab 0 clusters 4 133 127 117 135 lat 8 1 95 5 229 6 86 7 16 10 22 15 44 16 17 17 3
op 12 classes 117 349 11 35 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 13 classes 121 361 7 23 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitdec_l4 fp 1d26aee97ce0b0bf ops 11 mem 6
op 0 classes 118 370 10 14 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 118 5 370 10 10 15 14
op 1 classes 100 275 42 95 combined 0 ab 0 clusters 4 142 136 101 133 lat 4 1 100 5 275 10 42 15 95
op 2 classes 115 357 13 27 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 115 5 357 10 13 15 27
op 3 classes 112 344 13 43 combined 0 ab 0 clusters 4 125 125 124 138 lat 5 1 112 5 344 10 13 15 42 16 1
op 9 classes 127 374 1 10 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 10 classes 122 371 6 13 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitdec_l5 fp b8bca525cb9476d6 ops 16 mem 8
op 0 classes 50 172 10 8 combined 20 ab 0 clusters 4 60 60 60 60 lat 12 1 54 2 7 3 5 5 74 6 24 7 28 8 19 9 11 10 13 11 1 15 2 16 2
op 1 classes 51 132 16 41 combined 0 ab 0 clusters 4 67 61 48 64 lat 14 1 51 5 43 6 32 7 23 8 14 9 13 10 22 11 1 15 13 16 4 17 12 18 8 19 2 20 2
op 2 classes 57 101 15 67 combined 0 ab 0 clusters 4 67 56 45 72 lat 14 1 57 5 48 6 13 7 12 8 11 9 10 10 20 11 2 15 27 16 12 17 10 18 12 19 3 20 3
op 3 classes 55 152 9 24 combined 1 ab 0 clusters 4 64 52 65 59 lat 16 1 55 2 1 5 35 6 42 7 24 8 17 9 18 10 15 11 6 12 3 15 4 16 6 17 6 18 3 19 4 20 1
op 4 classes 53 145 11 31 combined 1 ab 0 clusters 4 64 58 60 58 lat 14 1 54 5 45 6 32 7 24 8 24 9 11 10 16 11 3 15 12 16 7 17 1 18 4 19 6 20 1
op 5 classes 43 120 22 55 combined 0 ab 0 clusters 4 65 78 51 46 lat 14 1 43 5 50 6 21 7 20 8 17 9 8 10 26 15 22 16 15 17 7 18 5 19 3 20 2 21 1
op 14 classes 58 172 2 8 combined 0 ab 0 clusters 4 60 60 60 60 lat 1 1 240
op 15 classes 53 164 7 16 combined 0 ab 0 clusters 4 60 60 60 60 lat 1 1 240
endloop
loop pegwitdec_l6 fp 9fa107ee3609db88 ops 13 mem 7
op 0 classes 50 153 12 33 combined 48 ab 0 clusters 4 62 62 62 62 lat 16 1 65 2 7 3 2 4 7 5 65 6 29 7 21 8 9 9 9 10 13 11 2 12 2 15 8 16 5 17 2 18 2
op 1 classes 66 170 2 10 combined 0 ab 0 clusters 4 68 67 63 50 lat 12 1 66 5 73 6 45 7 21 8 19 9 7 10 6 12 1 15 5 16 2 17 1 19 2
op 2 classes 65 154 10 19 combined 0 ab 0 clusters 4 67 56 50 75 lat 10 1 65 5 97 6 27 7 14 8 11 9 2 10 13 15 17 17 1 18 1
op 3 classes 62 186 0 0 combined 24 ab 0 clusters 4 62 62 62 62 lat 11 1 78 2 5 3 2 4 1 5 67 6 47 7 28 8 12 9 5 10 2 12 1
op 4 classes 54 154 11 29 combined 0 ab 0 clusters 4 65 61 61 61 lat 13 1 54 5 93 6 25 7 20 8 12 9 3 10 12 15 15 16 6 17 4 18 2 19 1 20 1
op 11 classes 57 176 5 10 combined 0 ab 0 clusters 4 62 62 62 62 lat 1 1 248
op 12 classes 59 178 3 8 combined 0 ab 0 clusters 4 62 62 62 62 lat 1 1 248
endloop
loop pegwitdec_l7 fp 853a98c44402575d ops 18 mem 8
op 0 classes 111 322 1 13 combined 2 ab 0 clusters 4 112 111 112 112 lat 7 1 111 5 311 6 7 7 2 8 4 10 1 15 11
op 1 classes 83 228 37 99 combined 0 ab 0 clusters 4 120 105 124 98 lat 7 1 83 5 223 6 2 7 3 10 37 15 96 16 3
op 2 classes 83 206 34 124 combined 1 ab 0 clusters 4 117 97 104 129 lat 12 1 83 2 1 5 184 6 9 7 9 8 1 9 2 10 34 15 109 16 11 17 3 18 1
op 3 classes 92 281 16 58 combined 0 ab 0 clusters 4 111 108 112 116 lat 10 1 92 5 173 6 77 7 21 8 8 10 18 15 31 16 21 17 4 18 2
op 4 classes 91 293 21 42 combined 0 ab 0 clusters 4 110 116 109 112 lat 10 1 91 5 275 6 12 7 3 8 2 9 1 10 21 15 40 16 1 19 1
op 5 classes 81 209 31 126 combined 0 ab 0 clusters 4 112 140 106 89 lat 11 1 81 5 203 6 4 7 1 8 1 10 31 15 119 16 4 17 1 18 1 20 1
op 16 classes 107 322 4 14 combined 0 ab 0 clusters 4 111 112 112 112 lat 1 1 447
op 17 classes 106 316 6 19 combined 0 ab 0 clusters 4 112 112 112 111 lat 1 1 447
endloop
loop pegwitenc_l0 fp 3f946e4f2e573b16 ops 16 mem 7
op 0 classes 59 174 0 0 combined 87 ab 0 clusters 4 58 58 59 58 lat 2 1 146 5 87
op 1 classes 59 174 0 0 combined 0 ab 0 clusters 4 58 59 58 58 lat 3 1 59 5 145 6 29
op 2 classes 117 116 0 0 combined 0 ab 0 clusters 4 0 117 0 116 lat 3 1 117 5 59 6 57
op 3 classes 58 175 0 0 combined 87 ab 0 clusters 4 58 58 58 59 lat 2 1 145 5 88
op 4 classes 59 174 0 0 combined 87 ab 0 clusters 4 58 59 58 58 lat 2 1 146 5 87
op 14 classes 58 175 0 0 combined 0 ab 0 clusters 4 58 58 59 58 lat 1 1 233
op 15 classes 59 174 0 0 combined 0 ab 0 clusters 4 58 58 59 58 lat 1 1 233
endloop
loop pegwitenc_l1 fp deb800056ef7c509 ops 11 mem 5
op 0 classes 66 199 4 7 combined 5 ab 0 clusters 4 70 69 68 69 lat 6 1 66 5 201 10 4 11 1 15 3 16 1
op 1 classes 68 200 2 6 combined 4 ab 0 clusters 4 70 70 68 68 lat 5 1 68 5 200 6 1 10 4 15 3
op 2 classes 68 202 0 6 combined 4 ab 0 clusters 4 68 69 71 68 lat 4 1 68 5 204 10 2 15 2
op 9 classes 69 205 1 1 combined 0 ab 0 clusters 4 70 70 68 68 lat 1 1 276
op 10 classes 68 202 2 4 combined 0 ab 0 clusters 4 70 70 68 68 lat 1 1 276
endloop
loop pegwitenc_l2 fp 10ef99323ebe488c ops 17 mem 8
op 0 classes 120 113 8 14 combined 7 ab 0 clusters 4 128 0 127 0 lat 13 1 120 3 4 4 1 5 56 6 25 7 17 8 8 9 6 10 10 12 1 15 4 16 1 18 2
op 1 classes 57 165 14 19 combined 0 ab 0 clusters 4 71 65 50 69 lat 14 1 57 5 72 6 43 7 20 8 18 9 9 10 16 12 1 15 11 16 3 17 1 18 1 19 2 22 1
op 2 classes 64 185 0 6 combined 21 ab 0 clusters 4 64 64 64 63 lat 15 1 74 2 3 3 4 4 1 5 54 6 59 7 25 8 20 9 6 10 4 11 1 14 1 16 1 20 1 22 1
op 3 classes 64 182 0 9 combined 0 ab 0 clusters 4 63 64 64 64 lat 14 1 64 5 67 6 57 7 33 8 11 9 4 10 3 11 6 12 1 15 2 16 3 17 2 18 1 20 1
op 4 classes 61 177 3 14 combined 0 ab 0 clusters 4 64 64 64 63 lat 14 1 61 5 47 6 61 7 39 8 14 9 7 10 6 11 4 12 2 15 8 16 1 17 2 18 2 21 1
op 5 classes 63 192 0 0 combined 52 ab 0 clusters 4 63 64 64 64 lat 12 1 91 2 15 3 5 4 1 5 37 6 42 7 35 8 18 9 6 10 2 11 2 13 1
op 15 classes 63 188 1 3 combined 0 ab 0 clusters 4 63 64 64 64 lat 1 1 255
op 16 classes 59 176 5 15 combined 0 ab 0 clusters 4 64 64 64 63 lat 1 1 255
endloop
loop pegwitenc_l3 fp 7ab9786113f95446 ops 17 mem 7
op 0 classes 128 380 0 4 combined 2 ab 0 clusters 4 128 128 128 128 lat 6 1 128 3 1 4 1 5 378 6 2 15 2
op 1 classes 120 362 8 22 combined 0 ab 0 clusters 4 128 128 128 128 lat 5 1 120 5 361 6 1 10 8 15 22
op 2 classes 80 295 32 105 combined 0 ab 0 clusters 4 112 143 128 129 lat 6 1 80 5 293 6 2 10 32 15 104 16 1
op 3 classes 79 223 49 161 combined 0 ab 0 clusters 4 128 128 128 128 lat 8 1 79 5 199 6 23 7 1 10 49 15 138 16 20 17 3
op 4 classes 118 347 10 37 combined 11 ab 0 clusters 4 128 128 128 128 lat 8 1 118 3 5 4 6 5 338 6 7 7 2 10 10 15 26
op 5 classes 109 260 19 124 combined 54 ab 0 clusters 4 128 128 128 128 lat 7 1 109 3 12 4 17 5 260 8 25 10 19 15 70
op 16 classes 118 358 10 26 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitenc_l4 fp 3bc6723f5573870b ops 9 mem 5
op 0 classes 38 111 0 0 combined 0 ab 0 clusters 4 37 37 38 37 lat 3 1 38 5 94 6 17
op 1 classes 38 111 0 0 combined 55 ab 0 clusters 4 36 38 38 37 lat 5 1 38 2 21 3 34 5 21 6 35
op 2 classes 38 111 0 0 combined 55 ab 0 clusters 4 37 38 38 36 lat 5 1 38 2 21 3 34 5 22 6 34
op 7 classes 38 111 0 0 combined 0 ab 0 clusters 4 36 37 38 38 lat 1 1 149
op 8 classes 38 111 0 0 combined 0 ab 0 clusters 4 37 38 38 36 lat 1 1 149
endloop
loop pegwitenc_l5 fp 785b34330a9dad2a ops 16 mem 7
op 0 classes 68 204 0 0 combined 0 ab 0 clusters 4 68 68 68 68 lat 3 1 68 5 203 6 1
op 1 classes 67 198 1 6 combined 3 ab 0 clusters 4 68 68 68 68 lat 6 1 67 5 197 6 1 8 3 10 1 15 3
op 2 classes 66 198 2 6 combined 4 ab 0 clusters 4 68 68 68 68 lat 6 1 66 3 1 5 198 8 3 10 1 15 3
op 3 classes 68 204 0 0 combined 0 ab 0 clusters 4 68 68 68 68 lat 2 1 68 5 204
op 4 classes 68 204 0 0 combined 0 ab 0 clusters 4 68 68 68 68 lat 3 1 68 5 203 6 1
op 14 classes 67 201 1 3 combined 0 ab 0 clusters 4 68 68 68 68 lat 1 1 272
op 15 classes 68 204 0 0 combined 0 ab 0 clusters 4 68 68 68 68 lat 1 1 272
endloop
loop pegwitenc_l6 fp 9aca7f2f06e425ad ops 9 mem 4
op 0 classes 124 368 4 16 combined 93 ab 0 clusters 4 128 128 128 128 lat 6 1 212 5 280 6 1 10 3 11 4 15 12
op 1 classes 126 378 2 6 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 126 5 378 10 2 15 6
op 7 classes 125 368 3 16 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 8 classes 120 358 8 26 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pegwitenc_l7 fp 042c70f9e912b211 ops 7 mem 4
op 0 classes 65 192 0 0 combined 0 ab 0 clusters 4 65 64 64 64 lat 2 1 65 5 192
op 1 classes 64 192 0 1 combined 16 ab 0 clusters 4 64 64 64 65 lat 3 1 80 5 176 15 1
op 5 classes 64 193 0 0 combined 0 ab 0 clusters 4 64 65 64 64 lat 1 1 257
op 6 classes 65 192 0 0 combined 0 ab 0 clusters 4 65 64 64 64 lat 1 1 257
endloop
loop pgpdec_l0 fp 92fdf5867dd6d013 ops 7 mem 3
op 0 classes 128 382 0 2 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 128 5 381 6 1 15 2
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 128 5 382 6 1 7 1
op 6 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpdec_l1 fp 7a79b98b0e692ccf ops 10 mem 5
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 127 382 1 2 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 127 5 382 10 1 15 2
op 2 classes 114 342 14 42 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 114 5 342 10 14 15 42
op 8 classes 116 348 12 36 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 9 classes 122 366 6 18 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpdec_l2 fp 120646fd49298fae ops 13 mem 6
op 0 classes 224 193 32 63 combined 31 ab 0 clusters 4 0 256 0 256 lat 7 1 224 5 124 6 99 9 1 10 32 15 16 16 16
op 1 classes 128 384 0 0 combined 32 ab 0 clusters 4 128 128 128 128 lat 8 1 128 4 12 5 23 6 264 7 19 8 40 9 23 10 3
op 2 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 6 5 42 6 276 7 136 8 32 9 21 10 5
op 3 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 128 5 46 6 275 7 28 8 27 9 8
op 4 classes 128 384 0 0 combined 4 ab 0 clusters 4 128 128 128 128 lat 7 1 131 2 1 5 47 6 259 7 29 8 34 9 11
op 12 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 1 1 512
endloop
loop pgpdec_l3 fp 77b36060dff59137 ops 12 mem 5
op 0 classes 128 382 0 2 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 382 15 2
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 383 6 1
op 2 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 10 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
op 11 classes 125 372 3 12 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpdec_l4 fp 68df985d911443fb ops 13 mem 7
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 128 5 155 6 196 8 33
op 1 classes 96 288 32 96 combined 0 ab 0 clusters 4 128 128 128 128 lat 5 1 96 5 288 10 32 15 72 16 24
op 2 classes 102 310 26 74 combined 381 ab 0 clusters 4 128 128 128 128 lat 6 1 375 2 8 5 29 6 26 11 50 12 24
op 3 classes 256 256 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 2 1 256 5 256
op 4 classes 102 310 26 74 combined 6 ab 0 clusters 4 128 128 128 128 lat 8 1 102 2 1 3 4 5 297 6 8 10 26 15 50 16 24
op 11 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
op 12 classes 0 512 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 1 1 512
endloop
loop pgpdec_l5 fp 4e7d8f27dd250f6f ops 10 mem 4
op 0 classes 112 317 16 67 combined 125 ab 0 clusters 4 128 128 128 128 lat 7 1 186 2 8 3 21 5 243 7 22 10 8 15 24
op 1 classes 126 375 2 9 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 126 5 375 10 2 15 9
op 8 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 9 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpdec_l6 fp 1a42e93e920b8151 ops 12 mem 6
op 0 classes 69 208 3 8 combined 0 ab 0 clusters 4 72 72 72 72 lat 6 1 69 5 207 6 1 10 3 15 7 16 1
op 1 classes 144 144 0 0 combined 0 ab 0 clusters 4 144 0 144 0 lat 4 1 144 5 140 6 3 7 1
op 2 classes 140 140 4 4 combined 0 ab 0 clusters 4 144 0 144 0 lat 4 1 140 5 140 10 4 15 4
op 3 classes 72 216 0 0 combined 1 ab 0 clusters 4 72 72 72 72 lat 2 1 73 5 215
op 4 classes 72 216 0 0 combined 2 ab 0 clusters 4 72 72 72 72 lat 3 1 72 4 2 5 214
op 11 classes 72 208 0 8 combined 0 ab 0 clusters 4 72 72 72 72 lat 1 1 288
endloop
loop pgpdec_l7 fp d5aa27d200aa5722 ops 11 mem 6
op 0 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 35 35 34 lat 3 1 35 5 71 6 33
op 1 classes 35 104 0 0 combined 0 ab 0 clusters 4 34 35 35 35 lat 2 1 35 5 104
op 2 classes 70 69 0 0 combined 0 ab 0 clusters 4 70 0 69 0 lat 3 1 70 5 35 6 34
op 3 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 35 35 34 lat 3 1 35 5 69 6 35
op 9 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 35 35 34 lat 1 1 139
op 10 classes 35 104 0 0 combined 0 ab 0 clusters 4 35 34 35 35 lat 1 1 139
endloop
loop pgpenc_l0 fp 8bc8af5bbddddcf0 ops 18 mem 8
op 0 classes 128 384 0 0 combined 9 ab 0 clusters 4 128 128 128 128 lat 6 1 128 2 9 5 320 7 23 8 23 10 9
op 1 classes 128 384 0 0 combined 9 ab 0 clusters 4 128 128 128 128 lat 7 1 128 3 9 5 311 6 23 8 23 10 9 11 9
op 2 classes 112 330 16 54 combined 35 ab 0 clusters 4 128 128 128 128 lat 10 1 112 2 8 5 261 7 55 8 32 10 8 14 9 15 9 16 9 22 9
op 3 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 128 5 293 6 32 7 18 8 32 11 9
op 4 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 128 5 325 6 18 7 23 8 9 10 9
op 5 classes 96 288 32 96 combined 0 ab 0 clusters 4 128 128 128 128 lat 8 1 96 5 288 10 32 15 32 17 23 18 23 20 9 22 9
op 16 classes 117 351 11 33 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 17 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l1 fp 66de92a98fbe0137 ops 10 mem 5
op 0 classes 62 183 0 0 combined 0 ab 0 clusters 4 61 61 61 62 lat 2 1 62 5 183
op 1 classes 61 184 0 0 combined 0 ab 0 clusters 4 61 61 61 62 lat 2 1 61 5 184
op 2 classes 55 190 0 0 combined 0 ab 0 clusters 4 55 60 74 56 lat 2 1 55 5 190
op 3 classes 62 183 0 0 combined 0 ab 0 clusters 4 62 61 61 61 lat 2 1 62 5 183
op 9 classes 123 122 0 0 combined 0 ab 0 clusters 4 123 0 122 0 lat 1 1 245
endloop
loop pgpenc_l2 fp d37cba8facdce8d7 ops 17 mem 7
op 0 classes 104 296 24 88 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 104 5 292 6 4 10 24 15 76 16 12
op 1 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 2 1 256 5 256
op 2 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 352 6 32
op 3 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 380 6 4
op 4 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 5 classes 96 288 32 96 combined 64 ab 0 clusters 4 128 128 128 128 lat 6 1 96 2 16 5 288 7 48 10 16 15 48
op 16 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l3 fp 60f18ea9e0a3800c ops 11 mem 6
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 96 289 32 95 combined 63 ab 0 clusters 4 128 128 128 128 lat 7 1 96 4 16 5 281 6 8 9 47 10 16 15 48
op 2 classes 112 314 16 70 combined 70 ab 0 clusters 4 128 128 128 128 lat 9 1 128 3 23 4 8 5 274 6 8 7 16 9 23 10 8 15 24
op 3 classes 114 312 14 72 combined 55 ab 0 clusters 4 128 128 128 128 lat 8 1 114 3 24 4 7 5 288 6 24 9 24 10 7 15 24
op 9 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 10 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l4 fp e7e33ce262574c18 ops 13 mem 6
op 0 classes 256 256 0 0 combined 2 ab 0 clusters 4 256 0 256 0 lat 4 1 256 2 2 5 253 6 1
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 2 classes 119 357 9 27 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 119 5 357 10 9 15 27
op 3 classes 123 364 2 23 combined 1 ab 0 clusters 4 125 125 124 138 lat 6 1 123 3 1 5 362 6 1 10 2 15 23
op 11 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 12 classes 127 381 1 3 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l5 fp 6b18dbe8b4f8fe70 ops 11 mem 5
op 0 classes 94 282 34 102 combined 0 ab 0 clusters 4 128 128 128 128 lat 10 1 94 5 269 6 10 7 3 10 34 15 58 16 20 17 21 18 2 19 1
op 1 classes 108 322 20 62 combined 55 ab 0 clusters 4 128 128 128 128 lat 17 1 118 2 3 3 5 4 2 5 285 6 23 7 3 8 1 9 1 10 35 11 2 12 2 13 1 15 26 16 2 17 2 18 1
op 2 classes 103 300 25 84 combined 0 ab 0 clusters 4 128 129 112 143 lat 10 1 103 5 279 6 13 7 7 9 1 10 25 15 69 16 10 17 3 18 2
op 9 classes 126 383 2 1 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
op 10 classes 91 278 37 106 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l6 fp df1e18f76fc075c2 ops 10 mem 4
op 0 classes 113 336 15 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 8 1 113 5 279 6 24 7 33 10 15 15 35 16 10 17 3
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 128 5 310 6 41 7 33
op 2 classes 97 294 31 90 combined 0 ab 0 clusters 4 128 128 128 128 lat 8 1 97 5 203 6 49 7 36 8 6 10 31 15 79 16 11
op 9 classes 86 258 42 126 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop pgpenc_l7 fp 0af79e5b86b8f92c ops 9 mem 4
op 0 classes 59 170 0 0 combined 85 ab 0 clusters 4 58 59 56 56 lat 3 1 59 2 85 5 85
op 1 classes 57 172 0 0 combined 0 ab 0 clusters 4 57 58 57 57 lat 3 1 57 5 90 6 82
op 2 classes 58 171 0 0 combined 0 ab 0 clusters 4 58 57 57 57 lat 2 1 58 5 171
op 8 classes 58 171 0 0 combined 0 ab 0 clusters 4 58 57 57 57 lat 1 1 229
endloop
loop rasta_l0 fp 4d0b74e898ae553b ops 7 mem 3
op 0 classes 102 230 26 154 combined 77 ab 0 clusters 4 128 128 128 128 lat 5 1 102 3 77 5 230 10 26 15 77
op 1 classes 96 195 32 189 combined 93 ab 0 clusters 4 128 128 128 128 lat 5 1 96 3 93 5 195 10 32 15 96
op 6 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop rasta_l1 fp a5bf04673fdff56d ops 12 mem 6
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 120 360 8 24 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 120 5 360 10 8 15 24
op 2 classes 112 336 16 48 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 112 5 336 10 16 15 48
op 3 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 4 classes 126 378 2 6 combined 0 ab 0 clusters 4 128 128 128 128 lat 4 1 126 5 378 10 2 15 6
op 11 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop rasta_l2 fp 3c96b37dab10bdbb ops 12 mem 5
op 0 classes 0 512 0 0 combined 12 ab 0 clusters 4 0 256 0 256 lat 3 2 6 4 6 5 500
op 1 classes 128 384 0 0 combined 6 ab 0 clusters 4 128 128 128 128 lat 3 1 128 4 6 5 378
op 2 classes 128 384 0 0 combined 6 ab 0 clusters 4 128 128 128 128 lat 3 1 128 2 6 5 378
op 3 classes 256 256 0 0 combined 0 ab 0 clusters 4 0 256 0 256 lat 2 1 256 5 256
op 11 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop rasta_l3 fp 285f87f0f9e388c9 ops 10 mem 4
op 0 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 1 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 8 classes 256 256 0 0 combined 0 ab 0 clusters 4 256 0 256 0 lat 1 1 512
op 9 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop rasta_l4 fp 0334310ee1c83916 ops 15 mem 7
op 0 classes 79 227 3 17 combined 0 ab 0 clusters 4 82 82 81 81 lat 9 1 79 5 191 6 25 7 10 8 1 10 3 15 10 16 5 17 2
op 1 classes 82 244 0 0 combined 0 ab 0 clusters 4 82 82 81 81 lat 5 1 82 5 181 6 32 7 27 8 4
op 2 classes 80 223 2 21 combined 0 ab 0 clusters 4 82 81 81 82 lat 11 1 80 5 169 6 32 7 18 8 3 9 1 10 2 15 13 16 5 17 2 18 1
op 3 classes 69 215 8 34 combined 0 ab 0 clusters 4 77 89 76 84 lat 11 1 69 5 162 6 26 7 22 8 4 9 1 10 8 15 16 16 4 17 11 18 3
op 4 classes 81 245 0 0 combined 0 ab 0 clusters 4 81 81 82 82 lat 6 1 81 5 200 6 21 7 12 8 8 9 4
op 5 classes 78 230 4 14 combined 0 ab 0 clusters 4 82 81 81 82 lat 11 1 78 5 181 6 12 7 18 8 15 9 4 10 4 15 6 16 2 17 5 18 1
op 14 classes 81 245 0 0 combined 0 ab 0 clusters 4 81 82 82 81 lat 1 1 326
endloop
loop rasta_l5 fp cbe9645fc74a711f ops 14 mem 6
op 0 classes 96 286 32 98 combined 416 ab 0 clusters 4 128 128 128 128 lat 7 1 96 3 250 4 22 5 14 8 32 13 66 14 32
op 1 classes 118 353 10 31 combined 0 ab 0 clusters 4 128 128 128 128 lat 6 1 118 5 330 6 23 10 10 15 29 16 2
op 2 classes 96 286 32 98 combined 0 ab 0 clusters 4 128 128 128 128 lat 7 1 96 5 250 6 22 7 14 10 32 15 66 16 32
op 3 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 3 1 128 5 370 6 14
op 4 classes 106 318 22 66 combined 0 ab 0 clusters 4 128 128 128 128 lat 5 1 106 5 304 6 14 10 22 15 66
op 13 classes 119 356 9 28 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
loop rasta_l6 fp f9075282c34893b2 ops 13 mem 5
op 0 classes 0 376 0 0 combined 2 ab 0 clusters 4 0 188 0 188 lat 4 3 2 5 295 6 64 7 15
op 1 classes 77 265 17 17 combined 2 ab 0 clusters 4 94 94 94 94 lat 8 1 77 2 2 5 231 6 1 7 31 10 17 15 3 16 14
op 2 classes 187 186 1 2 combined 1 ab 0 clusters 4 188 0 188 0 lat 5 1 187 5 159 6 28 10 1 15 1
op 3 classes 77 235 17 47 combined 0 ab 0 clusters 4 94 94 94 94 lat 6 1 77 5 205 6 30 10 17 15 32 16 15
op 12 classes 94 282 0 0 combined 0 ab 0 clusters 4 94 94 94 94 lat 1 1 376
endloop
loop rasta_l7 fp bb8f411692e35776 ops 11 mem 4
op 0 classes 128 384 0 0 combined 18 ab 0 clusters 4 128 128 128 128 lat 3 1 128 2 18 5 366
op 1 classes 128 384 0 0 combined 13 ab 0 clusters 4 128 128 128 128 lat 3 1 128 3 13 5 371
op 2 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 2 1 128 5 384
op 10 classes 128 384 0 0 combined 0 ab 0 clusters 4 128 128 128 128 lat 1 1 512
endloop
