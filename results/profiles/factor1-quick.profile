vliw-profile-store 1
loops 32
loop epicdec_l0 fp 6c3058494290d6e9 ops 14 mem 7
op 0 classes 24 72 0 0 combined 72 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 1 classes 24 72 0 0 combined 3 ab 0 clusters 4 24 24 24 24 lat 3 1 24 4 3 5 69
op 2 classes 48 48 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 2 1 48 5 48
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 4 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 5 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 13 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l1 fp 1e4fdd325954d736 ops 7 mem 3
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 6 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l19 fp 8306505bb384e182 ops 26 mem 20
op 0 classes 64 0 32 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 2 1 64 10 32
op 1 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 96 0 0 lat 1 5 96
op 2 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 0 96 0 lat 3 5 56 6 8 15 32
op 3 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 0 96 lat 2 5 64 6 32
op 4 classes 52 0 44 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 2 1 52 10 44
op 5 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 96 0 0 lat 3 5 32 6 32 15 32
op 6 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 96 0 lat 2 5 56 6 40
op 7 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 0 96 lat 2 5 56 6 40
op 8 classes 96 0 0 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 1 1 96
op 9 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 96 0 0 lat 3 5 32 6 32 15 32
op 10 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 0 96 0 lat 5 5 28 6 4 7 32 15 4 16 28
op 11 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 0 96 lat 2 5 52 6 44
op 12 classes 52 0 44 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 2 1 52 10 44
op 13 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 96 0 0 lat 2 5 64 6 32
op 14 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 0 96 0 lat 4 5 52 6 12 15 20 16 12
op 15 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 0 96 lat 3 5 20 6 60 7 16
op 16 classes 96 0 0 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 1 1 96
op 17 classes 0 64 0 32 combined 0 ab 0 clusters 4 0 96 0 0 lat 2 5 64 15 32
op 18 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 96 0 lat 1 5 96
op 25 classes 84 0 12 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 1 1 96
endloop
loop epicdec_l2 fp 1d2253b73c739a42 ops 10 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 9 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l3 fp ff0b7b8a1814ccd8 ops 9 mem 4
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l4 fp 998ef940b7efa27f ops 9 mem 4
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 7 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l5 fp 9f3114344cbf960f ops 8 mem 3
op 0 classes 48 48 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 2 1 48 5 48
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 7 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop epicdec_l6 fp 7fe1740c54694bb3 ops 12 mem 6
op 0 classes 13 49 11 23 combined 0 ab 0 clusters 4 24 24 24 24 lat 4 1 13 5 49 10 11 15 23
op 1 classes 37 37 11 11 combined 0 ab 0 clusters 4 48 0 48 0 lat 4 1 37 5 37 10 11 15 11
op 2 classes 13 49 11 23 combined 0 ab 0 clusters 4 24 24 24 24 lat 4 1 13 5 49 10 11 15 23
op 3 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 48 0 48 lat 1 5 96
op 10 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 11 classes 17 52 7 20 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l0 fp b0e103b1b470e347 ops 6 mem 3
op 0 classes 24 72 0 0 combined 18 ab 0 clusters 4 24 24 24 24 lat 3 1 24 2 18 5 54
op 1 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 3 1 25 2 34 5 37
op 5 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l1 fp d1892cbd9908fc81 ops 9 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 7 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l2 fp 337bc0ba1bba2cb6 ops 14 mem 7
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 4 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 12 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 13 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l3 fp 3b28b589c0af1cb5 ops 13 mem 7
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 4 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 11 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 12 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l4 fp 505beeef9766b42e ops 8 mem 4
op 0 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 2 1 59 5 37
op 1 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 2 1 59 5 37
op 2 classes 24 72 0 0 combined 36 ab 0 clusters 4 24 24 24 24 lat 2 1 60 5 36
op 7 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l5 fp 82bcb33dacd68ea2 ops 13 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 12 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l6 fp 84411c5adc4e4299 ops 13 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 12 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop gsmdec_l7 fp f948e8900e656991 ops 13 mem 7
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 4 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 11 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 12 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l0 fp 563b0a9dc819a49b ops 9 mem 3
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 3 1 24 5 55 6 17
op 1 classes 48 48 0 0 combined 0 ab 0 clusters 4 0 48 0 48 lat 4 1 48 5 8 6 34 7 6
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l1 fp 944dd65b024006ab ops 9 mem 4
op 0 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 2 1 59 5 37
op 1 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 2 1 59 5 37
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l2 fp 8c1412a9591dc3a3 ops 17 mem 8
op 0 classes 24 72 0 0 combined 1 ab 0 clusters 4 24 24 24 24 lat 4 1 24 3 1 5 49 6 22
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 48 48 0 0 combined 1 ab 0 clusters 4 48 0 48 0 lat 2 1 49 5 47
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 4 classes 48 48 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 2 1 48 5 48
op 5 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 15 classes 48 48 0 0 combined 0 ab 0 clusters 4 0 48 0 48 lat 1 1 96
op 16 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l3 fp 70e06fa8fa0bbe60 ops 10 mem 5
op 0 classes 48 47 0 1 combined 0 ab 0 clusters 4 48 0 48 0 lat 3 1 48 5 47 15 1
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 34 60 2 0 combined 0 ab 0 clusters 4 23 19 36 18 lat 3 1 34 5 60 10 2
op 3 classes 24 72 0 0 combined 72 ab 0 clusters 4 24 24 24 24 lat 2 1 24 4 72
op 9 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l4 fp 1d8cb772f08d7506 ops 12 mem 6
op 0 classes 0 80 0 0 combined 0 ab 0 clusters 4 0 40 0 40 lat 1 5 80
op 1 classes 20 60 0 0 combined 2 ab 0 clusters 4 20 20 20 20 lat 3 1 20 4 2 5 58
op 2 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 3 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 4 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 2 1 20 5 60
op 11 classes 20 60 0 0 combined 0 ab 0 clusters 4 20 20 20 20 lat 1 1 80
endloop
loop jpegenc_l5 fp f765a7ebdfbc3d8e ops 12 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 2 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 11 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l6 fp 1524d9c17b0fcff9 ops 15 mem 7
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 26 68 0 2 combined 0 ab 0 clusters 4 25 20 25 26 lat 3 1 26 5 68 15 2
op 2 classes 24 72 0 0 combined 1 ab 0 clusters 4 24 24 24 24 lat 4 1 24 4 1 5 61 6 10
op 3 classes 0 96 0 0 combined 1 ab 0 clusters 4 0 48 0 48 lat 2 3 1 5 95
op 4 classes 27 69 0 0 combined 0 ab 0 clusters 4 27 18 27 24 lat 2 1 27 5 69
op 5 classes 24 71 0 1 combined 0 ab 0 clusters 4 24 24 24 24 lat 3 1 24 5 71 15 1
op 14 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop jpegenc_l7 fp f6c3bf8766f2f788 ops 8 mem 4
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 2 1 59 5 37
op 6 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
op 7 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop mpeg2dec_l0 fp fec580790b2eaae1 ops 14 mem 7
op 0 classes 0 96 0 0 combined 47 ab 0 clusters 4 0 0 96 0 lat 12 5 3 8 1 10 1 12 14 13 12 14 20 17 1 19 1 20 1 21 12 22 10 23 20
op 1 classes 0 96 0 0 combined 46 ab 0 clusters 4 0 48 0 48 lat 17 2 11 3 1 4 12 5 1 6 1 8 2 9 1 10 9 11 12 14 1 16 1 17 3 18 10 19 9 20 1 22 11 24 10
op 2 classes 24 72 0 0 combined 4 ab 0 clusters 4 24 24 24 24 lat 14 1 24 3 1 7 1 8 1 11 1 12 2 15 1 16 1 17 13 18 29 20 1 22 11 23 1 24 9
op 3 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 13 1 24 5 1 10 1 11 1 13 1 14 1 16 1 19 1 20 4 21 10 22 32 23 9 24 10
op 4 classes 0 96 0 0 combined 48 ab 0 clusters 4 0 0 96 0 lat 13 3 1 6 1 7 1 8 1 11 3 12 2 13 23 14 9 15 10 16 2 17 1 18 23 20 19
op 5 classes 0 96 0 0 combined 48 ab 0 clusters 4 96 0 0 0 lat 14 4 1 8 1 9 1 10 1 13 1 14 2 15 2 16 23 17 19 19 2 20 1 21 23 22 10 23 9
op 13 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 0 96 0 lat 1 1 96
endloop
loop mpeg2dec_l1 fp c87dd0354e527d11 ops 9 mem 4
op 0 classes 0 96 0 0 combined 22 ab 0 clusters 4 48 0 48 0 lat 11 3 2 4 19 5 1 6 2 7 19 8 6 9 11 10 10 11 5 12 20 13 1
op 1 classes 0 96 0 0 combined 24 ab 0 clusters 4 48 0 48 0 lat 10 2 3 3 21 5 2 6 10 7 4 8 11 9 10 10 3 11 31 12 1
op 2 classes 24 72 0 0 combined 35 ab 0 clusters 4 24 24 24 24 lat 10 1 24 2 1 3 20 5 3 6 10 7 23 8 1 9 3 10 9 11 2
op 8 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 1 1 96
endloop
loop mpeg2dec_l2 fp 3ea3ad3dcd479d13 ops 11 mem 5
op 0 classes 24 72 0 0 combined 0 ab 0 clusters 4 24 24 24 24 lat 2 1 24 5 72
op 1 classes 0 96 0 0 combined 0 ab 0 clusters 4 0 48 0 48 lat 2 5 26 6 70
op 2 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 2 6 95 7 1
op 9 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
op 10 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
loop mpeg2dec_l3 fp c036bc5aea62a982 ops 9 mem 4
op 0 classes 0 96 0 0 combined 22 ab 0 clusters 4 48 0 48 0 lat 9 2 11 3 11 5 6 6 1 7 12 8 11 9 22 10 11 11 11
op 1 classes 0 96 0 0 combined 96 ab 0 clusters 4 48 0 48 0 lat 9 1 11 2 11 4 6 5 1 6 12 7 11 8 22 9 11 10 11
op 7 classes 0 96 0 0 combined 0 ab 0 clusters 4 96 0 0 0 lat 1 1 96
op 8 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
loop mpeg2dec_l4 fp 3d3ffd0fa8f42633 ops 14 mem 6
op 0 classes 0 96 0 0 combined 95 ab 0 clusters 4 48 0 48 0 lat 15 1 1 2 21 3 1 4 3 5 1 6 11 7 1 10 11 13 1 14 11 15 1 16 21 17 1 18 10 20 1
op 1 classes 0 96 0 0 combined 33 ab 0 clusters 4 48 0 48 0 lat 12 1 21 4 1 5 14 6 1 10 12 12 1 13 11 14 1 15 21 17 11 18 1 19 1
op 2 classes 0 96 0 0 combined 47 ab 0 clusters 4 96 0 0 0 lat 11 3 1 4 1 5 12 6 1 8 1 9 10 10 13 11 23 16 11 17 21 18 2
op 3 classes 0 96 0 0 combined 36 ab 0 clusters 4 48 0 48 0 lat 15 1 1 2 1 3 21 4 1 5 3 7 11 8 1 11 11 14 1 15 11 16 1 17 21 18 1 19 10 21 1
op 12 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
op 13 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
loop mpeg2dec_l5 fp 88aef7bc9e9ecf10 ops 12 mem 5
op 0 classes 0 96 0 0 combined 1 ab 0 clusters 4 48 0 48 0 lat 6 4 1 5 72 6 1 7 1 9 20 12 1
op 1 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 6 5 2 7 1 8 70 9 2 10 20 13 1
op 2 classes 0 93 0 3 combined 1 ab 0 clusters 4 96 0 0 0 lat 5 5 72 6 1 8 20 10 1 15 2
op 3 classes 22 70 2 2 combined 0 ab 0 clusters 4 24 24 24 24 lat 10 1 22 5 1 7 1 8 1 9 45 10 2 12 20 14 1 15 1 19 2
op 11 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
loop mpeg2dec_l6 fp 870f05276bf7467c ops 13 mem 6
op 0 classes 0 96 0 0 combined 46 ab 0 clusters 4 48 0 48 0 lat 12 5 1 8 11 9 11 10 2 11 22 13 1 15 1 20 1 23 11 24 11 25 1 26 23
op 1 classes 0 96 0 0 combined 23 ab 0 clusters 4 0 48 0 48 lat 10 7 1 9 22 10 1 12 1 17 1 22 1 23 1 24 45 25 1 26 22
op 2 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 8 7 1 12 1 17 1 22 1 23 22 25 46 26 22 27 2
op 3 classes 0 96 0 0 combined 46 ab 0 clusters 4 48 0 48 0 lat 10 5 2 6 11 7 12 8 22 10 1 15 1 20 1 24 12 25 11 26 23
op 11 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
op 12 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
loop mpeg2dec_l7 fp d8060f98f2b2f15d ops 9 mem 5
op 0 classes 0 96 0 0 combined 44 ab 0 clusters 4 48 0 48 0 lat 13 4 20 5 4 6 1 8 2 9 21 10 2 12 1 14 20 17 1 19 20 20 2 23 1 25 1
op 1 classes 0 96 0 0 combined 46 ab 0 clusters 4 48 0 48 0 lat 15 2 21 3 1 4 1 6 1 7 21 9 2 11 1 12 1 13 1 15 22 17 20 18 1 20 1 23 1 24 1
op 2 classes 0 96 0 0 combined 46 ab 0 clusters 4 48 0 48 0 lat 15 1 21 3 1 5 1 6 20 7 1 8 2 9 1 10 1 11 1 13 1 14 22 16 20 18 1 19 1 22 2
op 7 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
op 8 classes 0 96 0 0 combined 0 ab 0 clusters 4 48 0 48 0 lat 1 1 96
endloop
