//! Cross-crate integration: every schedule the pipeline produces is legal
//! and honors the paper's structural guarantees.

use interleaved_vliw::experiments::{prepare_loop, ExperimentContext, RunConfig};
use interleaved_vliw::sched::{ClusterPolicy, MemChains};
use interleaved_vliw::workloads::{spec_by_name, synthesize};

fn ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["g721dec".into()];
    ctx
}

#[test]
fn schedules_verify_for_every_policy() {
    let ctx = ctx();
    let spec = spec_by_name("g721dec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    for policy in [
        ClusterPolicy::Free,
        ClusterPolicy::BuildChains,
        ClusterPolicy::PreBuildChains,
        ClusterPolicy::NoChains,
    ] {
        let cfg = RunConfig {
            policy,
            ..RunConfig::ipbc()
        };
        let machine = ctx.machine_for(&cfg);
        for lw in &model.loops {
            let p = prepare_loop(&lw.kernel, &machine, &cfg, &ctx).expect("schedulable");
            let errs = p.schedule.verify(&p.kernel, &machine);
            assert!(errs.is_empty(), "{policy:?} {}: {errs:?}", p.kernel.name);
            // the achieved II never undercuts the MII bound
            assert!(p.schedule.ii >= p.schedule.mii);
        }
    }
}

#[test]
fn chain_members_share_a_cluster_under_ibc_and_ipbc() {
    let ctx = ctx();
    let spec = spec_by_name("g721dec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    for policy in [ClusterPolicy::BuildChains, ClusterPolicy::PreBuildChains] {
        let cfg = RunConfig {
            policy,
            ..RunConfig::ipbc()
        };
        let machine = ctx.machine_for(&cfg);
        for lw in &model.loops {
            let p = prepare_loop(&lw.kernel, &machine, &cfg, &ctx).expect("schedulable");
            let chains = MemChains::build(&p.kernel);
            for (cid, members) in chains.iter() {
                let clusters: Vec<usize> =
                    members.iter().map(|&m| p.schedule.op(m).cluster).collect();
                assert!(
                    clusters.windows(2).all(|w| w[0] == w[1]),
                    "{policy:?}: chain {cid} split across clusters {clusters:?} in {}",
                    p.kernel.name
                );
            }
        }
    }
}

#[test]
fn ipbc_pins_chains_to_their_average_preferred_cluster() {
    let ctx = ctx();
    let spec = spec_by_name("g721dec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let cfg = RunConfig::ipbc();
    let machine = ctx.machine_for(&cfg);
    let n = machine.n_clusters();
    for lw in &model.loops {
        let p = prepare_loop(&lw.kernel, &machine, &cfg, &ctx).expect("schedulable");
        let chains = MemChains::build(&p.kernel);
        for (cid, members) in chains.iter() {
            if let Some(pref) = chains.preferred_cluster(cid, &p.kernel, n) {
                for &m in members {
                    assert_eq!(
                        p.schedule.op(m).cluster,
                        pref,
                        "chain {cid} not in preferred cluster in {}",
                        p.kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn loads_never_assume_less_than_the_assigned_class() {
    // every load's assumed latency is positive and at most the remote miss
    let ctx = ctx();
    let spec = spec_by_name("g721dec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let cfg = RunConfig::ipbc();
    let machine = ctx.machine_for(&cfg);
    let rm = machine.mem_latencies.remote_miss;
    for lw in &model.loops {
        let p = prepare_loop(&lw.kernel, &machine, &cfg, &ctx).expect("schedulable");
        for op in p.kernel.ops.iter().filter(|o| o.is_load()) {
            let lat = p.schedule.op(op.id).assumed_latency;
            assert!(lat >= 1 && lat <= rm, "load {} assumed {lat}", op.name);
        }
    }
}
