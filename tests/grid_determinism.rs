//! The `RunGrid` execution contract: a parallel grid run is bit-identical
//! to a serial run, and both are identical to calling the pipeline stages
//! directly (no grid, no memo) per cell.

use interleaved_vliw::experiments::{
    run_benchmark, ExperimentContext, GridAxes, Parallelism, RunConfig, RunGrid, UnrollMode,
};
use interleaved_vliw::sched::ClusterPolicy;

fn tiny_ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "epicdec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.sim.warmup_iterations = 48;
    ctx.profile.iteration_cap = 48;
    // a tight MSHR budget so in-flight tracking (combining, fill-time
    // retirement, capacity back-pressure) is live in every cell
    ctx.machine.mshrs.per_cluster = 2;
    ctx
}

fn small_grid() -> RunGrid {
    // a real cross-product: policy × unroll × buffers (8 configs)
    let axes = GridAxes::from(RunConfig::ipbc())
        .policies(&[ClusterPolicy::PreBuildChains, ClusterPolicy::BuildChains])
        .unrolls(&[UnrollMode::NoUnroll, UnrollMode::Selective])
        .buffers(&[None, Some((16, 2))]);
    RunGrid::new("determinism").cross(&axes)
}

#[test]
fn parallel_equals_serial_bitwise() {
    let ctx = tiny_ctx();
    let grid = small_grid();
    let serial = grid.run_serial(&ctx);
    let parallel = grid.run_with(&ctx, Parallelism::Threads(4));
    assert_eq!(serial.benches(), parallel.benches());
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "parallel grid must be bit-identical to serial"
    );
}

#[test]
fn grid_equals_direct_pipeline_calls() {
    let ctx = tiny_ctx();
    let grid = small_grid();
    let result = grid.run(&ctx);
    let models = grid.models(&ctx);
    for (b, model) in models.iter().enumerate() {
        for (c, (label, cfg)) in result.configs().iter().enumerate() {
            let direct = run_benchmark(model, cfg, &ctx);
            let cell = result.cell(b, c);
            assert_eq!(cell.loops.len(), direct.loops.len(), "{label}");
            for (x, y) in cell.loops.iter().zip(&direct.loops) {
                assert_eq!(x.name, y.name);
                assert_eq!(
                    x.prepared.schedule, y.prepared.schedule,
                    "{label}/{}",
                    x.name
                );
                assert_eq!(x.prepared.factor, y.prepared.factor);
                assert_eq!(
                    x.sim.compute_cycles.to_bits(),
                    y.sim.compute_cycles.to_bits(),
                    "{label}/{}",
                    x.name
                );
                assert_eq!(
                    x.sim.stall_cycles.to_bits(),
                    y.sim.stall_cycles.to_bits(),
                    "{label}/{}",
                    x.name
                );
            }
        }
    }
}

/// The backend-sharded work queue (heavy exact / delay-tracking cells
/// dispatched first, heuristic cells back-filled) must not change a
/// single bit: a sweep over every backend and profile source is
/// bit-identical between the serial queue and four parallel workers.
#[test]
fn backend_sharded_queue_stays_bit_identical() {
    use interleaved_vliw::experiments::ProfileSource;
    use interleaved_vliw::sched::SchedBackend;
    let mut ctx = tiny_ctx();
    ctx.benchmarks = vec!["gsmdec".into()];
    let axes = GridAxes::from(RunConfig::ipbc())
        .backends(&SchedBackend::ALL)
        .sources(&[ProfileSource::Synthetic, ProfileSource::Measured])
        .unrolls(&[UnrollMode::NoUnroll]);
    let grid = RunGrid::new("sharded").cross(&axes);
    let serial = grid.run_serial(&ctx);
    let parallel = grid.run_with(&ctx, Parallelism::Threads(4));
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "sharded parallel grid must be bit-identical to serial"
    );
    // every (backend, source) cell is a distinct preparation key
    let n_loops: usize = grid.models(&ctx).iter().map(|m| m.loops.len()).sum();
    assert_eq!(serial.memoized_schedules(), 6 * n_loops);
}

#[test]
fn memoization_prunes_redundant_schedules() {
    let ctx = tiny_ctx();
    let grid = small_grid();
    let result = grid.run(&ctx);
    // 8 configs but only 4 distinct (policy × unroll) preparation keys per
    // loop: the buffer axis must not force re-scheduling
    let n_loops: usize = grid.models(&ctx).iter().map(|m| m.loops.len()).sum();
    assert_eq!(result.memoized_schedules(), 4 * n_loops);
}
