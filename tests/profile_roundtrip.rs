//! The profile subsystem's persistence contract: collect → persist →
//! reload yields identical `MemProfile`s and bit-identical schedules
//! (grid-determinism style), across every policy and both backends that
//! consume profiles.

use interleaved_vliw::experiments::{profile_fidelity, ExperimentContext};
use interleaved_vliw::ir::{LatencyProfile, LoopKernel};
use interleaved_vliw::profile::{attach_measurements, kernel_fingerprint, ProfileStore};
use interleaved_vliw::sched::{schedule_kernel, ClusterPolicy, SchedBackend, ScheduleOptions};

fn tiny_ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "mpeg2dec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.sim.warmup_iterations = 48;
    ctx.profile.iteration_cap = 48;
    ctx
}

/// Re-attaches a store's measurements onto freshly synthetic-profiled
/// kernels (what a consumer reloading the store from disk would do).
fn attach_from(store: &ProfileStore, loops: &[profile_fidelity::MeasuredLoop]) -> Vec<LoopKernel> {
    loops
        .iter()
        .map(|l| {
            let mut k = l.synthetic.clone();
            let lp = store
                .get(&k.name, kernel_fingerprint(&k))
                .expect("stored measurement");
            attach_measurements(&mut k, lp).expect("attach");
            k
        })
        .collect()
}

#[test]
fn collect_persist_reload_is_identity() {
    let ctx = tiny_ctx();
    let suite = profile_fidelity::collect_suite(&ctx);
    assert_eq!(suite.skipped, 0);
    assert!(!suite.store.is_empty());

    // persist → reload through the text format
    let text = suite.store.to_text();
    let reloaded = ProfileStore::from_text(&text).expect("parse");
    assert_eq!(reloaded, suite.store, "store round-trips exactly");
    assert_eq!(reloaded.to_text(), text, "serialization is a fixpoint");

    // attaching fresh vs reloaded measurements yields identical profiles
    let fresh = &suite.loops;
    let from_store = attach_from(&reloaded, fresh);
    for (a, b) in fresh.iter().zip(&from_store) {
        assert_eq!(a.measured, *b, "{}: reloaded kernel differs", b.name);
        for (x, y) in a.measured.ops.iter().zip(&b.ops) {
            let (Some(mx), Some(my)) = (&x.mem, &y.mem) else {
                continue;
            };
            assert_eq!(mx.profile, my.profile, "{}: MemProfile differs", b.name);
        }
    }
}

#[test]
fn reloaded_profiles_schedule_bit_identically() {
    let ctx = tiny_ctx();
    let suite = profile_fidelity::collect_suite(&ctx);
    let reloaded = ProfileStore::from_text(&suite.store.to_text()).expect("parse");
    let from_store = attach_from(&reloaded, &suite.loops);

    for backend in [SchedBackend::SwingModulo, SchedBackend::DelayTracking] {
        for policy in ClusterPolicy::ALL {
            let opts = ScheduleOptions {
                enum_limits: ctx.enum_limits,
                ..ScheduleOptions::new(policy)
            }
            .with_backend(backend);
            for (a, b) in suite.loops.iter().zip(&from_store) {
                let x = schedule_kernel(&a.measured, &ctx.machine, opts);
                let y = schedule_kernel(b, &ctx.machine, opts);
                match (x, y) {
                    (Ok(x), Ok(y)) => assert_eq!(
                        x,
                        y,
                        "{}: schedules differ under {policy:?}/{}",
                        b.name,
                        backend.name()
                    ),
                    (Err(_), Err(_)) => {}
                    _ => panic!("{}: one source scheduled, the other failed", b.name),
                }
            }
        }
    }
}

#[test]
fn store_lookup_rejects_stale_fingerprints() {
    let ctx = tiny_ctx();
    let suite = profile_fidelity::collect_suite(&ctx);
    let l = &suite.loops[0];
    let lp = suite
        .store
        .get(&l.synthetic.name, kernel_fingerprint(&l.synthetic))
        .expect("present");
    // a mutated kernel body must not accept the stored measurements
    let mut mutated = l.synthetic.clone();
    mutated
        .ops
        .iter_mut()
        .find_map(|o| o.mem.as_mut())
        .expect("mem op")
        .offset += 4;
    assert!(
        suite
            .store
            .get(&mutated.name, kernel_fingerprint(&mutated))
            .is_none(),
        "lookup keys on the body fingerprint"
    );
    assert!(attach_measurements(&mut mutated, lp).is_err());
}

#[test]
fn histogram_edge_cases_survive_the_store() {
    use interleaved_vliw::profile::{LoopProfile, OpProfile};
    // empty loads (never-executed op), single-access ops, saturating
    // counts — every edge the serializer must carry
    let mut empty = OpProfile::new(4);
    empty.cluster_hist = vec![0; 4];
    let mut single = OpProfile::new(4);
    single.classes[0] = 1;
    single.cluster_hist[2] = 1;
    single.latency = LatencyProfile {
        counts: vec![(1, 1)],
    };
    let mut saturated = OpProfile::new(4);
    saturated.classes[3] = u64::MAX;
    saturated.cluster_hist[0] = u64::MAX;
    saturated.latency = LatencyProfile {
        counts: vec![(15, u64::MAX), (4096, 1)],
    };
    let mut store = ProfileStore::new();
    store.insert(LoopProfile {
        name: "edges".into(),
        fingerprint: 42,
        n_ops: 3,
        ops: vec![(0, empty), (1, single), (2, saturated)],
    });
    let back = ProfileStore::from_text(&store.to_text()).expect("parse");
    assert_eq!(back, store);
    let ops = &back.loops()[0].ops;
    assert!(ops[0].1.latency.is_empty());
    assert_eq!(ops[1].1.total(), 1);
    assert_eq!(ops[1].1.latency.percentile(1.0), Some(1));
    assert_eq!(ops[2].1.classes[3], u64::MAX);
    assert_eq!(ops[2].1.latency.total(), u64::MAX, "totals saturate");
}
