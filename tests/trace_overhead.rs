//! The zero-overhead-when-off contract of `vliw-trace`, pinned end to
//! end:
//!
//! * scheduling with no sink (`Trace::off()`) and with an attached
//!   [`NullSink`] both produce schedules bit-identical to the
//!   uninstrumented entry points, across every §4 cluster policy — the
//!   probes change nothing observable;
//! * the instrumented repro pass records under the logical clock, so two
//!   identical runs export byte-identical Chrome trace JSON — the
//!   deterministic-artifact half of the dual-clock rule.

use interleaved_vliw::experiments::{optgap, trace_exp, ExperimentContext};
use interleaved_vliw::ir::LoopKernel;
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{
    schedule_outcome, schedule_outcome_traced, ClusterPolicy, ScheduleOptions,
};
use interleaved_vliw::trace::{NullSink, RecordingSink, Trace};

/// Factor-1 suite kernels of two benchmarks — the same population slice
/// the backend-optimality test uses.
fn suite_kernels() -> (Vec<LoopKernel>, MachineConfig) {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "epicdec".into()];
    ctx.profile.iteration_cap = 48;
    (optgap::factor1_kernels(&ctx), ctx.machine)
}

#[test]
fn disabled_tracing_is_bit_identical_across_the_policy_suite() {
    let (kernels, machine) = suite_kernels();
    assert!(!kernels.is_empty());
    let null = NullSink;
    for kernel in &kernels {
        for policy in ClusterPolicy::ALL {
            let opts = ScheduleOptions::new(policy);
            let plain =
                schedule_outcome(kernel, &machine, opts).expect("factor-1 suite kernels schedule");
            let off = schedule_outcome_traced(kernel, &machine, opts, Trace::off())
                .expect("Trace::off() must not change schedulability");
            let nulled = schedule_outcome_traced(kernel, &machine, opts, Trace::new(&null))
                .expect("NullSink must not change schedulability");
            let reference = plain.schedule.to_compact_text();
            assert_eq!(
                reference,
                off.schedule.to_compact_text(),
                "{policy:?} on {}: Trace::off() changed the schedule",
                kernel.name
            );
            assert_eq!(
                reference,
                nulled.schedule.to_compact_text(),
                "{policy:?} on {}: NullSink changed the schedule",
                kernel.name
            );
            assert_eq!(plain.quality, off.quality);
            assert_eq!(plain.quality, nulled.quality);
        }
    }
}

/// An attached recording sink must not perturb the schedules either —
/// observation is passive: the instrumented run's schedules match the
/// uninstrumented ones bit for bit while the recording is non-empty.
#[test]
fn recording_observes_without_perturbing() {
    let (kernels, machine) = suite_kernels();
    let sink = RecordingSink::logical();
    let trace = Trace::new(&sink);
    let opts = ScheduleOptions::new(ClusterPolicy::PreBuildChains);
    for kernel in &kernels {
        let plain = schedule_outcome(kernel, &machine, opts).expect("suite schedules");
        let traced =
            schedule_outcome_traced(kernel, &machine, opts, trace).expect("suite schedules");
        assert_eq!(
            plain.schedule.to_compact_text(),
            traced.schedule.to_compact_text(),
            "{}: recording perturbed the schedule",
            kernel.name
        );
    }
    assert!(
        !sink.is_empty(),
        "the traced runs must have recorded events"
    );
}

#[test]
fn logical_clock_trace_pass_is_byte_identical_twice_over() {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into()];
    ctx.sim.iteration_cap = 48;
    ctx.profile.iteration_cap = 48;
    let a = trace_exp::run_trace(&ctx, 1);
    let b = trace_exp::run_trace(&ctx, 1);
    assert!(a.events > 0, "the instrumented pass must record events");
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "logical-clock Chrome export drifted between identical runs"
    );
    assert_eq!(a.metrics, b.metrics, "metrics snapshot drifted");
}
