//! The `SchedulerBackend` seam contract, pinned over the suite and over
//! seeded random kernels:
//!
//! * `ExactBnB` never reports a worse II than any heuristic policy run
//!   under the same front-end (the incumbent-seeded search only explores
//!   strictly smaller IIs);
//! * every exact schedule passes `Schedule::verify`;
//! * cutoffs are counted, visible outcomes — an exact result either
//!   proves optimality or says exactly why it could not;
//! * the exact backend proves optimality on a healthy fraction of the
//!   factor-1 suite under the default node budget (the `optgap` study's
//!   precondition).

use interleaved_vliw::experiments::{optgap, ExperimentContext};
use interleaved_vliw::ir::{ArrayKind, KernelBuilder, LoopKernel, Opcode, SrcOperand};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{
    schedule_kernel, schedule_outcome, ClusterPolicy, MemChains, SchedBackend, SchedQuality,
    ScheduleOptions,
};
use interleaved_vliw::workloads::rng::StdRng;

fn exact_opts(policy: ClusterPolicy) -> ScheduleOptions {
    ScheduleOptions::new(policy).with_backend(SchedBackend::ExactBnB)
}

/// Factor-1 suite kernels of two benchmarks — the same population slice
/// the MRT-equivalence test uses.
fn suite_kernels() -> (Vec<LoopKernel>, MachineConfig) {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = vec!["gsmdec".into(), "epicdec".into()];
    ctx.profile.iteration_cap = 48;
    (optgap::factor1_kernels(&ctx), ctx.machine)
}

#[test]
fn exact_backend_dominates_every_heuristic_on_the_suite() {
    let (kernels, machine) = suite_kernels();
    assert!(!kernels.is_empty());
    let mut cells = 0usize;
    let mut proven = 0usize;
    for kernel in &kernels {
        for policy in ClusterPolicy::ALL {
            let heuristic = schedule_kernel(kernel, &machine, ScheduleOptions::new(policy))
                .expect("factor-1 suite kernels schedule");
            let out = schedule_outcome(kernel, &machine, exact_opts(policy))
                .expect("exact backend inherits the incumbent");
            cells += 1;
            assert!(
                out.schedule.ii <= heuristic.ii,
                "{policy:?} on {}: exact II {} > heuristic II {}",
                kernel.name,
                out.schedule.ii,
                heuristic.ii
            );
            assert!(out.schedule.ii >= out.schedule.mii, "{}", kernel.name);
            let errs = out.schedule.verify(kernel, &machine);
            assert!(errs.is_empty(), "{policy:?} on {}: {errs:?}", kernel.name);
            // the exact search honors the policy's hard constraints — its
            // "optimal" is for the policy's problem, not a relaxation
            let chains = MemChains::build(kernel);
            let pins =
                policy
                    .assigner()
                    .precompute_pins(kernel, &chains, machine.clusters.n_clusters);
            for (i, pin) in pins.iter().enumerate() {
                if let Some(c) = pin {
                    assert_eq!(
                        out.schedule.ops[i].cluster, *c,
                        "{policy:?} on {}: pinned op escaped its cluster",
                        kernel.name
                    );
                }
            }
            if policy == ClusterPolicy::BuildChains {
                for (_, members) in chains.iter() {
                    let c0 = out.schedule.op(members[0]).cluster;
                    for &m in members {
                        assert_eq!(
                            out.schedule.op(m).cluster,
                            c0,
                            "{}: chain split under IBC",
                            kernel.name
                        );
                    }
                }
            }
            match out.quality {
                SchedQuality::ProvenOptimal => {
                    proven += 1;
                    assert_eq!(
                        out.stats.cutoffs, 0,
                        "{}: a proof admits no cutoff",
                        kernel.name
                    );
                }
                SchedQuality::CutoffFeasible => {
                    assert!(
                        out.stats.cutoffs > 0,
                        "{}: cutoff must be counted",
                        kernel.name
                    );
                }
                SchedQuality::Heuristic => panic!("exact backend cannot claim Heuristic"),
                SchedQuality::DegradedFallback => {
                    panic!("{}: default fallback policy never degrades", kernel.name)
                }
            }
        }
    }
    // the acceptance bar: ≥ 25% of factor-1 suite cells proven optimal
    // under the default budget (in practice it is far higher)
    assert!(
        proven * 4 >= cells,
        "only {proven}/{cells} cells proven optimal"
    );
}

/// Builds a small random kernel: a few loads feeding a random int
/// dataflow, an optional carried recurrence, and a store.
fn random_kernel(rng: &mut StdRng, case: usize) -> LoopKernel {
    let mut b = KernelBuilder::new(format!("prop{case}"));
    let a = b.array("a", 4096, ArrayKind::Heap);
    let mut values = Vec::new();
    for i in 0..rng.random_range(1..3usize) {
        let (_, v) = b.load(format!("ld{i}"), a, 4 * i as i64, 4, 4);
        values.push(v);
    }
    let n_ops = rng.random_range(2..7usize);
    for i in 0..n_ops {
        let mut srcs: Vec<SrcOperand> = Vec::new();
        for _ in 0..rng.random_range(1..3usize) {
            srcs.push(values[rng.random_range(0..values.len())].into());
        }
        let (_, v) = if rng.random::<bool>() {
            b.int_op_carried(format!("c{i}"), Opcode::Add, &srcs, 1)
        } else {
            b.int_op(format!("c{i}"), Opcode::Mul, &srcs)
        };
        values.push(v);
    }
    let last = *values.last().expect("nonempty");
    b.store("st", a, 2048, 4, 4, last);
    b.finish(64.0)
}

#[test]
fn exact_backend_dominates_on_seeded_random_kernels() {
    let mut rng = StdRng::seed_from_u64(0xb4b_0001);
    let machine = MachineConfig::word_interleaved_4();
    for case in 0..20 {
        let kernel = random_kernel(&mut rng, case);
        let policy = ClusterPolicy::ALL[rng.random_range(0..4usize)];
        let heuristic = schedule_kernel(&kernel, &machine, ScheduleOptions::new(policy))
            .expect("small random kernels schedule");
        let out = schedule_outcome(&kernel, &machine, exact_opts(policy)).unwrap();
        assert!(
            out.schedule.ii <= heuristic.ii,
            "case {case} ({policy:?}): exact {} > heuristic {}",
            out.schedule.ii,
            heuristic.ii
        );
        let errs = out.schedule.verify(&kernel, &machine);
        assert!(errs.is_empty(), "case {case}: {errs:?}");
        // small kernels under the default budget must be decided exactly
        assert_eq!(
            out.quality,
            SchedQuality::ProvenOptimal,
            "case {case}: small kernels are within budget"
        );
    }
}

#[test]
fn tuple_entry_points_agree_with_outcomes() {
    // the tuple-returning wrappers and the outcome entry point dispatch
    // through the same backend: bit-identical schedules either way
    let (kernels, machine) = suite_kernels();
    let kernel = &kernels[0];
    for backend in SchedBackend::ALL {
        let opts = ScheduleOptions::new(ClusterPolicy::PreBuildChains).with_backend(backend);
        let via_tuple = schedule_kernel(kernel, &machine, opts).unwrap();
        let via_outcome = schedule_outcome(kernel, &machine, opts).unwrap().schedule;
        assert_eq!(via_tuple, via_outcome, "{}", backend.name());
    }
}
