//! The journaled-MRT contract: schedules produced through the transaction
//! journal are bit-identical to the retained clone-based reference path
//! (`TrialMode::CloneBased`), across every cluster-assignment policy and
//! every machine configuration of the paper. If a rollback ever failed to
//! restore the exact reservation state, some later placement would see a
//! phantom (or missing) reservation and the schedules would diverge.

use interleaved_vliw::experiments::ExperimentContext;
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{
    schedule_kernel, schedule_kernel_with_stats, ClusterPolicy, ScheduleOptions, TrialMode,
};
use interleaved_vliw::workloads::{profile_kernel, spec_by_name, synthesize, ArrayLayout};

/// The paper's machine configurations (§5): 4-cluster word-interleaved,
/// 2-cluster word-interleaved, multiVLIW, and both unified latencies.
fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("word4", MachineConfig::word_interleaved_4()),
        ("word2", MachineConfig::word_interleaved(2)),
        ("multivliw", MachineConfig::multi_vliw_4()),
        ("unified1", MachineConfig::unified_4(1)),
        ("unified5", MachineConfig::unified_4(5)),
    ]
}

/// Profiled factor-1 and ×4-unrolled kernels of two suite benchmarks —
/// enough chains, recurrences and bus pressure to exercise every rollback
/// path.
fn kernels(machine: &MachineConfig) -> Vec<interleaved_vliw::ir::LoopKernel> {
    let ctx = ExperimentContext::quick();
    let mut out = Vec::new();
    for bench in ["gsmdec", "epicdec"] {
        let spec = spec_by_name(bench).unwrap();
        let model = synthesize(&spec, &ctx.workloads, machine);
        for lw in &model.loops {
            for factor in [1u32, 4] {
                let mut k = interleaved_vliw::ir::unroll(&lw.kernel, factor);
                let layout = ArrayLayout::new(&k, machine, true, ctx.workloads.profile_input);
                profile_kernel(&mut k, machine, &layout, &ctx.profile);
                out.push(k);
            }
        }
    }
    out
}

#[test]
fn journaled_schedules_are_bit_identical_to_clone_based() {
    let mut compared = 0usize;
    for (mname, machine) in machines() {
        for kernel in kernels(&machine) {
            for policy in ClusterPolicy::ALL {
                let mut opts = ScheduleOptions::new(policy);
                assert_eq!(opts.trial, TrialMode::Journaled, "journal is the default");
                let journaled = schedule_kernel(&kernel, &machine, opts);
                opts.trial = TrialMode::CloneBased;
                let reference = schedule_kernel(&kernel, &machine, opts);
                match (journaled, reference) {
                    (Ok(j), Ok(r)) => {
                        assert_eq!(
                            j, r,
                            "schedule diverged: {policy:?} on {mname}/{}",
                            kernel.name
                        );
                        compared += 1;
                    }
                    (j, r) => {
                        // unschedulable kernels must fail identically
                        assert_eq!(
                            j.is_err(),
                            r.is_err(),
                            "feasibility diverged: {policy:?} on {mname}/{}",
                            kernel.name
                        );
                    }
                }
            }
        }
    }
    assert!(compared > 50, "comparison set too small: {compared}");
}

#[test]
fn both_trial_modes_do_identical_placement_work() {
    // same decisions ⇒ same work counters (rollbacks included): the
    // journal only changes how a failed probe is discarded
    let machine = MachineConfig::word_interleaved_4();
    for kernel in kernels(&machine) {
        for policy in ClusterPolicy::ALL {
            let mut opts = ScheduleOptions::new(policy);
            let j = schedule_kernel_with_stats(&kernel, &machine, opts);
            opts.trial = TrialMode::CloneBased;
            let r = schedule_kernel_with_stats(&kernel, &machine, opts);
            if let (Ok((_, js)), Ok((_, rs))) = (j, r) {
                assert_eq!(js, rs, "{policy:?} on {}", kernel.name);
                assert!(js.trial_cycles > 0 && js.placements > 0);
            }
        }
    }
}
