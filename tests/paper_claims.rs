//! Qualitative paper claims, checked end to end on a reduced context.
//!
//! These tests assert *directions and orderings* the paper reports, not
//! absolute numbers (the substrate is a synthetic suite — see
//! EXPERIMENTS.md for the full-scale magnitude comparison).

use interleaved_vliw::experiments::{run_benchmark, ExperimentContext, RunConfig, UnrollMode};
use interleaved_vliw::sched::ClusterPolicy;
use interleaved_vliw::workloads::{spec_by_name, synthesize};

fn small_ctx(benches: &[&str]) -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = benches.iter().map(|s| s.to_string()).collect();
    ctx.sim.iteration_cap = 64;
    ctx.sim.warmup_iterations = 64;
    ctx.profile.iteration_cap = 64;
    ctx
}

/// §5.2 / Figure 4: OUF unrolling raises the local hit ratio over no
/// unrolling (both aligned), and alignment raises it over no alignment.
#[test]
fn unrolling_and_alignment_raise_local_hits() {
    let ctx = small_ctx(&["gsmdec"]);
    let spec = spec_by_name("gsmdec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let base = RunConfig::ipbc();
    let mix = |cfg: &RunConfig| {
        let m = run_benchmark(&model, cfg, &ctx).access_mix();
        let t: f64 = m.iter().sum();
        m[0] / t
    };
    let no_unroll = mix(&RunConfig {
        unroll: UnrollMode::NoUnroll,
        ..base
    });
    let ouf_noalign = mix(&RunConfig {
        unroll: UnrollMode::Ouf,
        padding: false,
        ..base
    });
    let ouf_align = mix(&RunConfig {
        unroll: UnrollMode::Ouf,
        ..base
    });
    assert!(
        ouf_align > no_unroll + 0.05,
        "unrolling gain: {ouf_align:.3} vs {no_unroll:.3}"
    );
    assert!(
        ouf_align > ouf_noalign + 0.02,
        "alignment gain: {ouf_align:.3} vs {ouf_noalign:.3}"
    );
}

/// Figure 6: Attraction Buffers reduce stall time.
#[test]
fn attraction_buffers_reduce_stall() {
    let ctx = small_ctx(&["gsmdec"]);
    let spec = spec_by_name("gsmdec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let without = run_benchmark(&model, &RunConfig::ipbc(), &ctx).stall_cycles();
    let with = run_benchmark(&model, &RunConfig::ipbc().with_buffers(), &ctx).stall_cycles();
    assert!(
        with <= without,
        "AB must not increase stall: {with} vs {without}"
    );
    if without > 1000.0 {
        assert!(with < without, "AB reduces nontrivial stall");
    }
}

/// §5.3 / Figure 8: IPBC trades compute time for stall time relative to
/// IBC ("compute time is bigger when IPBC is used while stall time is
/// bigger for IBC").
#[test]
fn ipbc_trades_compute_for_stall_against_ibc() {
    let ctx = small_ctx(&["jpegenc", "gsmdec"]);
    let (mut ipbc_stall, mut ibc_stall) = (0.0, 0.0);
    for model in ctx.models() {
        ipbc_stall += run_benchmark(&model, &RunConfig::ipbc(), &ctx).stall_cycles();
        ibc_stall += run_benchmark(&model, &RunConfig::ibc(), &ctx).stall_cycles();
    }
    assert!(
        ibc_stall > ipbc_stall,
        "IBC ignores preferences, so it must stall more: IBC {ibc_stall:.0} vs IPBC {ipbc_stall:.0}"
    );
}

/// Figure 7: dropping the chain constraint can only improve (or keep)
/// workload balance, and unrolling improves it.
#[test]
fn chains_and_unrolling_affect_balance_as_reported() {
    let ctx = small_ctx(&["epicdec"]);
    let spec = spec_by_name("epicdec").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let n = ctx.machine.n_clusters();
    let base = RunConfig::ipbc();
    let wb = |cfg: &RunConfig| run_benchmark(&model, cfg, &ctx).workload_balance(n);
    let with_chains = wb(&RunConfig {
        unroll: UnrollMode::Ouf,
        ..base
    });
    let without_chains = wb(&RunConfig {
        unroll: UnrollMode::Ouf,
        policy: ClusterPolicy::NoChains,
        ..base
    });
    assert!(
        without_chains <= with_chains + 0.02,
        "chains can only hurt balance: {without_chains:.3} vs {with_chains:.3}"
    );
}

/// The unified cache at 1 cycle (optimistic) beats the realistic 5-cycle
/// configuration — sanity anchor for the Figure 8 normalization.
#[test]
fn unified_one_cycle_beats_five_cycle() {
    let ctx = small_ctx(&["g721enc"]);
    let spec = spec_by_name("g721enc").unwrap();
    let model = synthesize(&spec, &ctx.workloads, &ctx.machine);
    let u1 = run_benchmark(&model, &RunConfig::unified(1), &ctx).total_cycles();
    let u5 = run_benchmark(&model, &RunConfig::unified(5), &ctx).total_cycles();
    assert!(u1 < u5, "u1 {u1:.0} vs u5 {u5:.0}");
}

/// The §4.3.3 worked example reproduces the paper's numbers exactly.
#[test]
fn worked_example_matches_paper() {
    let e = interleaved_vliw::experiments::example433::example433();
    assert_eq!(e.mii, 8);
    assert_eq!(e.final_latencies, (4, 1, 1));
    assert_eq!(e.ipbc_ii, 8);
    assert_eq!(e.ipbc_clusters, (0, 1));
}
