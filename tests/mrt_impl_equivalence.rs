//! The word-parallel MRT contract: schedules produced over the bitmask
//! reservation table (`MrtImpl::Masked`, the default) are bit-identical —
//! schedule *and* work counters — to the retained scalar-probe reference
//! (`MrtImpl::ScalarReference`), across every cluster-assignment policy,
//! every paper machine configuration, and seeded random kernels. If the
//! free-mask walk ever surfaced a different candidate cycle than probing
//! every slot in order, or a word-level journal undo ever restored the
//! wrong bits, some placement would diverge and these comparisons would
//! catch it.

use interleaved_vliw::experiments::ExperimentContext;
use interleaved_vliw::ir::{ArrayKind, KernelBuilder, LoopKernel, Opcode, SrcOperand};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{
    schedule_kernel_with_stats, ClusterPolicy, MrtImpl, ScheduleOptions,
};
use interleaved_vliw::workloads::rng::StdRng;
use interleaved_vliw::workloads::{profile_kernel, spec_by_name, synthesize, ArrayLayout};

/// The paper's machine configurations (§5): 4-cluster word-interleaved,
/// 2-cluster word-interleaved, multiVLIW, and both unified latencies.
fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("word4", MachineConfig::word_interleaved_4()),
        ("word2", MachineConfig::word_interleaved(2)),
        ("multivliw", MachineConfig::multi_vliw_4()),
        ("unified1", MachineConfig::unified_4(1)),
        ("unified5", MachineConfig::unified_4(5)),
    ]
}

/// Profiled factor-1 and ×4-unrolled kernels of two suite benchmarks —
/// the same population slice the transaction-equivalence test uses:
/// chains, recurrences, and enough bus pressure that multi-slot
/// transfers wrap the II boundary under savepoint/rollback churn.
fn kernels(machine: &MachineConfig) -> Vec<LoopKernel> {
    let ctx = ExperimentContext::quick();
    let mut out = Vec::new();
    for bench in ["gsmdec", "epicdec"] {
        let spec = spec_by_name(bench).unwrap();
        let model = synthesize(&spec, &ctx.workloads, machine);
        for lw in &model.loops {
            for factor in [1u32, 4] {
                let mut k = interleaved_vliw::ir::unroll(&lw.kernel, factor);
                let layout = ArrayLayout::new(&k, machine, true, ctx.workloads.profile_input);
                profile_kernel(&mut k, machine, &layout, &ctx.profile);
                out.push(k);
            }
        }
    }
    out
}

/// Runs both MRT implementations and asserts the outcomes are identical.
fn assert_impls_agree(
    kernel: &LoopKernel,
    machine: &MachineConfig,
    policy: ClusterPolicy,
    label: &str,
) -> bool {
    let mut opts = ScheduleOptions::new(policy);
    assert_eq!(opts.mrt_impl, MrtImpl::Masked, "bitmask is the default");
    let masked = schedule_kernel_with_stats(kernel, machine, opts);
    opts.mrt_impl = MrtImpl::ScalarReference;
    let scalar = schedule_kernel_with_stats(kernel, machine, opts);
    match (masked, scalar) {
        (Ok((ms, mst)), Ok((ss, sst))) => {
            assert_eq!(ms, ss, "schedule diverged: {policy:?} on {label}");
            assert_eq!(mst, sst, "work counters diverged: {policy:?} on {label}");
            true
        }
        (m, s) => {
            // unschedulable kernels must fail identically
            assert_eq!(
                m.is_err(),
                s.is_err(),
                "feasibility diverged: {policy:?} on {label}"
            );
            false
        }
    }
}

#[test]
fn masked_schedules_are_bit_identical_to_scalar_reference_on_the_suite() {
    let mut compared = 0usize;
    for (mname, machine) in machines() {
        for kernel in kernels(&machine) {
            for policy in ClusterPolicy::ALL {
                let label = format!("{mname}/{}", kernel.name);
                if assert_impls_agree(&kernel, &machine, policy, &label) {
                    compared += 1;
                }
            }
        }
    }
    assert!(compared > 50, "comparison set too small: {compared}");
}

/// Builds a small random kernel: a few loads feeding a random int
/// dataflow, optional carried recurrences, and a store. Dense dataflow
/// forces inter-cluster copies, whose 2-cycle transfers wrap the II
/// boundary at small IIs — the bus-run splitting path of the bitmask
/// journal.
fn random_kernel(rng: &mut StdRng, case: usize) -> LoopKernel {
    let mut b = KernelBuilder::new(format!("mrtprop{case}"));
    let a = b.array("a", 4096, ArrayKind::Heap);
    let mut values = Vec::new();
    for i in 0..rng.random_range(1..3usize) {
        let (_, v) = b.load(format!("ld{i}"), a, 4 * i as i64, 4, 4);
        values.push(v);
    }
    let n_ops = rng.random_range(2..9usize);
    for i in 0..n_ops {
        let mut srcs: Vec<SrcOperand> = Vec::new();
        for _ in 0..rng.random_range(1..4usize) {
            srcs.push(values[rng.random_range(0..values.len())].into());
        }
        let (_, v) = if rng.random::<bool>() {
            b.int_op_carried(format!("c{i}"), Opcode::Add, &srcs, 1)
        } else {
            b.int_op(format!("c{i}"), Opcode::Mul, &srcs)
        };
        values.push(v);
    }
    let last = *values.last().expect("nonempty");
    b.store("st", a, 2048, 4, 4, last);
    b.finish(64.0)
}

#[test]
fn masked_matches_scalar_reference_on_seeded_random_kernels() {
    let mut rng = StdRng::seed_from_u64(0x3a5c_0007);
    for case in 0..30 {
        let kernel = random_kernel(&mut rng, case);
        let machine = match case % 3 {
            0 => MachineConfig::word_interleaved_4(),
            1 => MachineConfig::word_interleaved(2),
            _ => MachineConfig::multi_vliw_4(),
        };
        for policy in ClusterPolicy::ALL {
            let label = format!("case{case}/{}", kernel.name);
            assert_impls_agree(&kernel, &machine, policy, &label);
        }
    }
}

#[test]
fn wrapped_bus_transfers_agree_under_rollback_churn() {
    // All-to-all int dataflow: five producers each feeding five
    // consumers. Copy pressure saturates the buses at the smallest IIs,
    // so transfers start near the II boundary and wrap — while failed
    // placements roll the split bus runs back through their savepoints.
    let mut b = KernelBuilder::new("dense_bus");
    let mut prods = Vec::new();
    for i in 0..5 {
        let (_, v) = b.int_op(format!("p{i}"), Opcode::Add, &[]);
        prods.push(v);
    }
    for j in 0..5 {
        let srcs: Vec<SrcOperand> = prods.iter().map(|&v| v.into()).collect();
        let _ = b.int_op(format!("c{j}"), Opcode::Add, &srcs);
    }
    let kernel = b.finish(64.0);
    for (mname, machine) in machines() {
        for policy in ClusterPolicy::ALL {
            let label = format!("{mname}/dense_bus");
            assert_impls_agree(&kernel, &machine, policy, &label);
        }
    }
}
