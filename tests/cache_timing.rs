//! Contract tests for the three cache organizations through the common
//! `DataCache` interface: the paper's Table 2 / §4.3.3 timing must hold
//! exactly when uncontended, and the structural properties (no replication
//! vs replication, combining, port counts) must differ exactly as §2-§3
//! describe.

use interleaved_vliw::machine::{AccessClass, MachineConfig};
use interleaved_vliw::mem::{build_cache, AccessRequest, DataCache};

fn drain(cache: &mut dyn DataCache, cluster: usize, addr: u64, now: u64) -> (AccessClass, u64) {
    let out = cache.access(AccessRequest::load(cluster, addr, 4, now));
    (out.class, out.ready_at - now)
}

#[test]
fn interleaved_uncontended_latencies_are_1_5_10_15() {
    let m = MachineConfig::word_interleaved_4();
    let mut c = build_cache(&m);
    // local miss then local hit (cluster 0 owns address 0)
    assert_eq!(drain(c.as_mut(), 0, 0, 0), (AccessClass::LocalMiss, 10));
    assert_eq!(drain(c.as_mut(), 0, 0, 100), (AccessClass::LocalHit, 1));
    // remote miss then remote hit (cluster 1 reads cluster 0's word)
    assert_eq!(
        drain(c.as_mut(), 1, 256, 200),
        (AccessClass::RemoteMiss, 15)
    );
    assert_eq!(drain(c.as_mut(), 1, 256, 300), (AccessClass::RemoteHit, 5));
}

#[test]
fn the_three_organizations_disagree_exactly_where_the_paper_says() {
    // same access pattern on all three architectures: cluster 0 writes,
    // clusters 1..3 read repeatedly
    let patterns: [(&str, MachineConfig); 3] = [
        ("interleaved", MachineConfig::word_interleaved_4()),
        ("multivliw", MachineConfig::multi_vliw_4()),
        ("unified", MachineConfig::unified_4(1)),
    ];
    for (name, m) in patterns {
        let mut c = build_cache(&m);
        let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm
        let mut now = 100;
        // second reader: all three can serve it
        let first = c.access(AccessRequest::load(1, 0, 4, now)).class;
        now += 100;
        // repeated reads from cluster 1
        let repeat = c.access(AccessRequest::load(1, 0, 4, now)).class;
        match name {
            // word-interleaved: no replication — stays remote forever
            "interleaved" => {
                assert_eq!(first, AccessClass::RemoteHit);
                assert_eq!(repeat, AccessClass::RemoteHit);
            }
            // multiVLIW: replication makes the repeat local (its advantage)
            "multivliw" => {
                assert_eq!(first, AccessClass::RemoteHit);
                assert_eq!(repeat, AccessClass::LocalHit);
            }
            // unified: every access is "local" by construction
            _ => {
                assert!(first.is_local());
                assert!(repeat.is_local());
            }
        }
    }
}

#[test]
fn attraction_buffers_give_interleaved_bounded_replication() {
    let m = MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2);
    let mut c = build_cache(&m);
    let _ = c.access(AccessRequest::load(0, 0, 4, 0));
    let a = c.access(AccessRequest::load(1, 0, 4, 100));
    assert_eq!(a.class, AccessClass::RemoteHit);
    let b = c.access(AccessRequest::load(1, 0, 4, 200));
    assert_eq!(b.class, AccessClass::LocalHit, "buffer hit");
    assert!(b.ab_hit);
    // …but the replication dies at the loop boundary (§3 correctness)
    c.flush_loop_boundary();
    let d = c.access(AccessRequest::load(1, 0, 4, 300));
    assert_eq!(d.class, AccessClass::RemoteHit);
}

#[test]
fn combining_counts_separately_and_totals_conserve() {
    let m = MachineConfig::word_interleaved_4();
    let mut c = build_cache(&m);
    let a = c.access(AccessRequest::load(1, 0, 4, 0)); // remote miss in flight
    let b = c.access(AccessRequest::load(1, 16, 4, 2)); // same subblock
    assert!(!a.combined && b.combined);
    assert_eq!(b.ready_at, a.ready_at, "merged request completes together");
    let s = c.stats();
    assert_eq!(s.combined(), 1);
    let classified: u64 = AccessClass::ALL.iter().map(|&cl| s.count(cl)).sum();
    assert_eq!(classified + s.combined(), 2);
}

/// The in-flight tracking contract, uniform across all three
/// organizations: a second access issued while the first miss's fill is
/// still in the air can never complete before that fill — it combines
/// with the in-flight transaction instead of being served phantom data.
#[test]
fn no_organization_serves_data_before_it_arrives() {
    let machines = [
        MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2),
        MachineConfig::multi_vliw_4(),
        MachineConfig::unified_4(1),
    ];
    for m in machines {
        let arch = m.arch;
        let mut c = build_cache(&m);
        let a = c.access(AccessRequest::load(1, 0, 4, 0)); // cold miss
        let b = c.access(AccessRequest::load(1, 0, 4, 1)); // fill in flight
        assert!(
            b.ready_at >= a.ready_at,
            "{arch}: served at {} before the fill at {}",
            b.ready_at,
            a.ready_at
        );
        assert!(b.combined, "{arch}: must merge into the in-flight miss");
    }
}

#[test]
fn unified_ports_bound_throughput() {
    let m = MachineConfig::unified_4(1);
    let mut c = build_cache(&m);
    let _ = c.access(AccessRequest::load(0, 0, 4, 0)); // warm
    let mut ready = Vec::new();
    for i in 0..6 {
        ready.push(c.access(AccessRequest::load(i % 4, 0, 4, 100)).ready_at);
    }
    // Table 2: 5 read/write ports — five hits complete together, the sixth
    // waits one cycle
    assert!(ready[..5].iter().all(|&r| r == 101));
    assert_eq!(ready[5], 102);
}

#[test]
fn oversized_elements_are_remote_on_the_interleaved_cache_only() {
    // 8-byte accesses: always remote on the word-interleaved machine
    // (§5.2's mpeg2dec observation), plain hits elsewhere
    let m = MachineConfig::word_interleaved_4();
    let mut c = build_cache(&m);
    let _ = c.access(AccessRequest::load(0, 0, 8, 0));
    let o = c.access(AccessRequest::load(0, 0, 8, 100));
    assert!(!o.class.is_local());

    let m = MachineConfig::unified_4(1);
    let mut c = build_cache(&m);
    let _ = c.access(AccessRequest::load(0, 0, 8, 0));
    let o = c.access(AccessRequest::load(0, 0, 8, 100));
    assert_eq!(o.class, AccessClass::LocalHit);
}
