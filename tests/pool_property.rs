//! Property-style tests for `ResourcePool`, the deterministic queueing
//! primitive every cache timing model books buses and ports through.
//!
//! Cases are drawn from the workspace's own deterministic PRNG (the
//! container builds offline, so proptest is not available); seeds are
//! fixed, so every run exercises the same cases and failures reproduce.

use interleaved_vliw::mem::ResourcePool;
use interleaved_vliw::workloads::rng::StdRng;

/// A random request stream with non-decreasing arrival times (the
/// `DataCache` contract the pools are used under).
fn gen_requests(rng: &mut StdRng, n: usize) -> Vec<(u64, u64)> {
    let mut now = 0u64;
    (0..n)
        .map(|_| {
            now += rng.random_range(0..4u64);
            let service = rng.random_range(1..=5u64);
            (now, service)
        })
        .collect()
}

/// Replays `requests` and returns each `(start, service)` booking.
fn replay(servers: usize, requests: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut pool = ResourcePool::new(servers);
    requests
        .iter()
        .map(|&(earliest, service)| {
            let peek = pool.peek(earliest);
            let start = pool.acquire(earliest, service);
            assert_eq!(peek, start, "peek must predict the next acquire");
            (start, service)
        })
        .collect()
}

/// No booking starts before its request arrives, and with non-decreasing
/// arrivals the granted starts are non-decreasing too (FIFO service).
#[test]
fn starts_respect_arrival_and_are_fifo() {
    let mut rng = StdRng::seed_from_u64(0x9001_0001);
    for _case in 0..50 {
        let servers = rng.random_range(1..6usize);
        let requests = gen_requests(&mut rng, 200);
        let bookings = replay(servers, &requests);
        let mut prev_start = 0;
        for (&(earliest, _), &(start, _)) in requests.iter().zip(&bookings) {
            assert!(start >= earliest, "booked before the request arrived");
            assert!(start >= prev_start, "later request started earlier");
            prev_start = start;
        }
    }
}

/// At no instant do more than `k` bookings overlap: the pool never
/// oversubscribes its servers.
#[test]
fn k_servers_never_oversubscribed() {
    let mut rng = StdRng::seed_from_u64(0x9001_0002);
    for _case in 0..50 {
        let servers = rng.random_range(1..6usize);
        let requests = gen_requests(&mut rng, 200);
        let bookings = replay(servers, &requests);
        // event sweep over booking edges
        let mut events: Vec<(u64, i64)> = Vec::new();
        for &(start, service) in &bookings {
            events.push((start, 1));
            events.push((start + service, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // ends before starts
        let mut live = 0i64;
        for (_, delta) in events {
            live += delta;
            assert!(live <= servers as i64, "more than {servers} overlapping");
        }
    }
}

/// Throughput bounds: `n` equal-service requests arriving together finish
/// no earlier than perfect `k`-server packing allows, and exactly at the
/// packed bound (the greedy earliest-server rule is work-conserving for
/// identical requests).
#[test]
fn k_server_throughput_bound_is_tight_for_uniform_bursts() {
    let mut rng = StdRng::seed_from_u64(0x9001_0003);
    for _case in 0..50 {
        let servers = rng.random_range(1..6usize);
        let n = rng.random_range(1..40usize);
        let service = rng.random_range(1..=4u64);
        let arrive = rng.random_range(0..100u64);
        let mut pool = ResourcePool::new(servers);
        let last_end = (0..n)
            .map(|_| pool.acquire(arrive, service) + service)
            .max()
            .unwrap();
        let rounds = n.div_ceil(servers) as u64;
        assert_eq!(
            last_end,
            arrive + rounds * service,
            "{n} requests x {service} cycles on {servers} servers"
        );
    }
}

/// The pool is work-conserving under staggered arrivals: a request never
/// waits while a server sits idle. Checked against a reference simulation
/// that tracks every server's free time explicitly.
#[test]
fn matches_explicit_per_server_reference() {
    let mut rng = StdRng::seed_from_u64(0x9001_0004);
    for _case in 0..50 {
        let servers = rng.random_range(1..6usize);
        let requests = gen_requests(&mut rng, 120);
        let bookings = replay(servers, &requests);
        // reference: greedy earliest-available server
        let mut free = vec![0u64; servers];
        for (&(earliest, service), &(start, _)) in requests.iter().zip(&bookings) {
            let (idx, &t) = free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .expect("nonempty");
            let expect = t.max(earliest);
            assert_eq!(start, expect, "request should start when a server frees");
            free[idx] = expect + service;
        }
    }
}
