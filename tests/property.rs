//! Property-based tests over randomly generated kernels: scheduling
//! legality, unrolling semantics and cache-model invariants must hold for
//! *arbitrary* inputs, not just the synthesized suite.

use proptest::prelude::*;

use interleaved_vliw::ir::{
    unroll, ArrayKind, DepKind, KernelBuilder, LoopKernel, MemProfile, Opcode,
};
use interleaved_vliw::machine::{AccessClass, MachineConfig};
use interleaved_vliw::mem::{AccessRequest, CoherentCache, DataCache, InterleavedCache};
use interleaved_vliw::sched::{
    optimal_unroll_factor, schedule_kernel, ClusterPolicy, MemChains, ScheduleOptions,
};

/// Compact description of one generated operation.
#[derive(Debug, Clone)]
enum GenOp {
    Load { array: usize, offset: u8, stride: u8, gran_pow: u8, hit: u8, pref: u8 },
    Compute { opcode: u8, src_a: u8, src_b: Option<u8>, carried: bool },
    Store { array: usize, offset: u8, stride: u8, gran_pow: u8, value: u8 },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0..2usize, any::<u8>(), 1..32u8, 0..3u8, 0..=10u8, 0..4u8).prop_map(
            |(array, offset, stride, gran_pow, hit, pref)| GenOp::Load {
                array,
                offset,
                stride,
                gran_pow,
                hit,
                pref
            }
        ),
        (0..6u8, any::<u8>(), proptest::option::of(any::<u8>()), any::<bool>()).prop_map(
            |(opcode, src_a, src_b, carried)| GenOp::Compute { opcode, src_a, src_b, carried }
        ),
        (0..2usize, any::<u8>(), 1..32u8, 0..3u8, any::<u8>()).prop_map(
            |(array, offset, stride, gran_pow, value)| GenOp::Store {
                array,
                offset,
                stride,
                gran_pow,
                value
            }
        ),
    ]
}

/// Builds a valid kernel from the op descriptions (always at least one op).
fn build_kernel(ops: &[GenOp], chain_pairs: &[(u8, u8)], recur: bool) -> LoopKernel {
    let mut b = KernelBuilder::new("prop");
    let a0 = b.array("a0", 4096, ArrayKind::Heap);
    let a1 = b.array("a1", 4096, ArrayKind::Global);
    let arrays = [a0, a1];
    let mut values = Vec::new();
    let mut mem_ids = Vec::new();
    let mut store_ids = Vec::new();
    let mut load_ids = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            GenOp::Load { array, offset, stride, gran_pow, hit, pref } => {
                let gran = 1u8 << gran_pow; // 1, 2 or 4 bytes
                let (id, v) = b.load(
                    format!("ld{i}"),
                    arrays[*array],
                    (*offset as i64) * gran as i64,
                    (*stride as i64) * gran as i64,
                    gran,
                );
                b.set_profile(
                    id,
                    MemProfile::with_local_ratio(*hit as f64 / 10.0, *pref as usize, 0.7, 4),
                );
                values.push(v);
                mem_ids.push(id);
                load_ids.push(id);
            }
            GenOp::Compute { opcode, src_a, src_b, carried } => {
                let table = [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And, Opcode::FAdd, Opcode::FMul];
                let mut srcs = Vec::new();
                if !values.is_empty() {
                    srcs.push(values[*src_a as usize % values.len()].into());
                    if let Some(sb) = src_b {
                        srcs.push(values[*sb as usize % values.len()].into());
                    }
                }
                let (_, v) = if *carried {
                    b.int_op_carried(format!("c{i}"), table[*opcode as usize % 6], &srcs, 1)
                } else {
                    b.int_op(format!("c{i}"), table[*opcode as usize % 6], &srcs)
                };
                values.push(v);
            }
            GenOp::Store { array, offset, stride, gran_pow, value } => {
                if values.is_empty() {
                    continue; // nothing to store yet
                }
                let gran = 1u8 << gran_pow;
                let v = values[*value as usize % values.len()];
                let (id, _) = b.store(
                    format!("st{i}"),
                    arrays[*array],
                    2048 + (*offset as i64) * gran as i64,
                    (*stride as i64) * gran as i64,
                    gran,
                    v,
                );
                mem_ids.push(id);
                store_ids.push(id);
            }
        }
    }
    if values.is_empty() {
        let (_, v) = b.int_op("seed", Opcode::Add, &[]);
        values.push(v);
    }
    // conservative chains: forward memory edges between chosen pairs
    for &(x, y) in chain_pairs {
        if mem_ids.len() >= 2 {
            let i = x as usize % mem_ids.len();
            let j = y as usize % mem_ids.len();
            if i != j {
                let (from, to) = (mem_ids[i.min(j)], mem_ids[i.max(j)]);
                b.mem_dep(from, to, DepKind::MemOut, 0);
            }
        }
    }
    // optional memory recurrence
    if recur {
        if let (Some(&st), Some(&ld)) = (store_ids.first(), load_ids.first()) {
            b.mem_dep(st, ld, DepKind::MemFlow, 1);
        }
    }
    b.finish(64.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any generated kernel schedules legally under every policy.
    #[test]
    fn schedules_are_always_legal(
        ops in proptest::collection::vec(gen_op(), 1..10),
        chains in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        recur in any::<bool>(),
        policy_idx in 0..4usize,
    ) {
        let kernel = build_kernel(&ops, &chains, recur);
        let machine = MachineConfig::word_interleaved_4();
        let policy = [
            ClusterPolicy::Free,
            ClusterPolicy::BuildChains,
            ClusterPolicy::PreBuildChains,
            ClusterPolicy::NoChains,
        ][policy_idx];
        let s = schedule_kernel(&kernel, &machine, ScheduleOptions::new(policy))
            .expect("generated kernels are schedulable");
        let errs = s.verify(&kernel, &machine);
        prop_assert!(errs.is_empty(), "violations: {errs:?}\nkernel: {kernel}");
        prop_assert!(s.ii >= s.mii);
        // chain co-location under the chain-respecting policies
        if matches!(policy, ClusterPolicy::BuildChains | ClusterPolicy::PreBuildChains) {
            let mc = MemChains::build(&kernel);
            for (_, members) in mc.iter() {
                let c0 = s.op(members[0]).cluster;
                for &m in members {
                    prop_assert_eq!(s.op(m).cluster, c0);
                }
            }
        }
    }

    /// Unrolling preserves dynamic work and makes every eligible stride a
    /// multiple of N×I at the OUF.
    #[test]
    fn unrolling_invariants(
        ops in proptest::collection::vec(gen_op(), 1..8),
        factor in 1..9u32,
    ) {
        let kernel = build_kernel(&ops, &[], false);
        let machine = MachineConfig::word_interleaved_4();
        let u = unroll(&kernel, factor);
        prop_assert_eq!(u.ops.len(), kernel.ops.len() * factor as usize);
        prop_assert!((u.dynamic_ops() - kernel.dynamic_ops()).abs() < 1e-6);
        // SSA preserved
        let mut seen = std::collections::HashSet::new();
        for op in &u.ops {
            if let Some(d) = op.dst {
                prop_assert!(seen.insert(d));
            }
        }
        // OUF property
        let ouf = optimal_unroll_factor(&kernel, &machine);
        let at_ouf = unroll(&kernel, ouf);
        for op in at_ouf.mem_ops() {
            let m = op.mem.as_ref().unwrap();
            if let Some(stride) = m.stride {
                if m.granularity as usize <= machine.cache.interleave_bytes && m.hit_rate() > 0.0 {
                    prop_assert_eq!(stride % machine.ni_bytes(), 0,
                        "op {} stride {} not aligned at OUF {}", op.name, stride, ouf);
                }
            }
        }
    }

    /// Cache models conserve accesses and the interleaved cache never
    /// replicates data outside Attraction Buffers.
    #[test]
    fn cache_invariants(addrs in proptest::collection::vec((0..4096u64, 0..4usize, any::<bool>()), 1..200)) {
        let machine = MachineConfig::word_interleaved_4();
        let mut cache = InterleavedCache::new(&machine);
        let mut now = 0;
        for &(addr, cluster, is_store) in &addrs {
            now += 3;
            let req = if is_store {
                AccessRequest::store(cluster, addr, 4, now)
            } else {
                AccessRequest::load(cluster, addr, 4, now)
            };
            let out = cache.access(req);
            prop_assert!(out.ready_at >= now);
            // a local access classifies local iff the home matches
            let home = cache.home_cluster(addr);
            if out.class.is_local() && !out.combined {
                prop_assert_eq!(home, cluster);
            }
        }
        let s = cache.stats();
        let sum: u64 = AccessClass::ALL.iter().map(|&c| s.count(c)).sum::<u64>() + s.combined();
        prop_assert_eq!(sum, addrs.len() as u64);
    }

    /// The coherent (multiVLIW) cache keeps the single-writer invariant.
    #[test]
    fn coherent_single_writer(addrs in proptest::collection::vec((0..1024u64, 0..4usize, any::<bool>()), 1..150)) {
        let machine = MachineConfig::multi_vliw_4();
        let mut cache = CoherentCache::new(&machine);
        let mut now = 0;
        for &(addr, cluster, is_store) in &addrs {
            now += 3;
            let req = if is_store {
                AccessRequest::store(cluster, addr, 4, now)
            } else {
                AccessRequest::load(cluster, addr, 4, now)
            };
            let _ = cache.access(req);
            if is_store {
                prop_assert_eq!(cache.copies_of(addr), 1, "store must leave one copy");
            } else {
                prop_assert!(cache.copies_of(addr) >= 1);
            }
        }
    }
}
