//! Property-style tests over randomly generated kernels: scheduling
//! legality, unrolling semantics and cache-model invariants must hold for
//! *arbitrary* inputs, not just the synthesized suite.
//!
//! Cases are drawn from the workspace's own deterministic PRNG (the
//! container builds offline, so proptest is not available); seeds are
//! fixed, so every run exercises the same cases and failures reproduce.

use interleaved_vliw::ir::{
    unroll, ArrayKind, DepKind, KernelBuilder, LoopKernel, MemProfile, Opcode,
};
use interleaved_vliw::machine::{AccessClass, MachineConfig};
use interleaved_vliw::mem::{AccessRequest, CoherentCache, DataCache, InterleavedCache};
use interleaved_vliw::sched::{
    optimal_unroll_factor, schedule_kernel, ClusterPolicy, MemChains, ScheduleOptions,
};
use interleaved_vliw::workloads::rng::StdRng;

/// Compact description of one generated operation.
#[derive(Debug, Clone)]
enum GenOp {
    Load {
        array: usize,
        offset: u8,
        stride: u8,
        gran_pow: u8,
        hit: u8,
        pref: u8,
    },
    Compute {
        opcode: u8,
        src_a: u8,
        src_b: Option<u8>,
        carried: bool,
    },
    Store {
        array: usize,
        offset: u8,
        stride: u8,
        gran_pow: u8,
        value: u8,
    },
}

fn gen_op(rng: &mut StdRng) -> GenOp {
    match rng.random_range(0..3usize) {
        0 => GenOp::Load {
            array: rng.random_range(0..2usize),
            offset: rng.random::<u64>() as u8,
            stride: rng.random_range(1..32u32) as u8,
            gran_pow: rng.random_range(0..3u32) as u8,
            hit: rng.random_range(0..=10u32) as u8,
            pref: rng.random_range(0..4u32) as u8,
        },
        1 => GenOp::Compute {
            opcode: rng.random_range(0..6u32) as u8,
            src_a: rng.random::<u64>() as u8,
            src_b: if rng.random::<bool>() {
                Some(rng.random::<u64>() as u8)
            } else {
                None
            },
            carried: rng.random::<bool>(),
        },
        _ => GenOp::Store {
            array: rng.random_range(0..2usize),
            offset: rng.random::<u64>() as u8,
            stride: rng.random_range(1..32u32) as u8,
            gran_pow: rng.random_range(0..3u32) as u8,
            value: rng.random::<u64>() as u8,
        },
    }
}

fn gen_ops(rng: &mut StdRng, min: usize, max_exclusive: usize) -> Vec<GenOp> {
    let n = rng.random_range(min..max_exclusive);
    (0..n).map(|_| gen_op(rng)).collect()
}

fn gen_chain_pairs(rng: &mut StdRng, max_exclusive: usize) -> Vec<(u8, u8)> {
    let n = rng.random_range(0..max_exclusive);
    (0..n)
        .map(|_| (rng.random::<u64>() as u8, rng.random::<u64>() as u8))
        .collect()
}

/// Builds a valid kernel from the op descriptions (always at least one op).
fn build_kernel(ops: &[GenOp], chain_pairs: &[(u8, u8)], recur: bool) -> LoopKernel {
    let mut b = KernelBuilder::new("prop");
    let a0 = b.array("a0", 4096, ArrayKind::Heap);
    let a1 = b.array("a1", 4096, ArrayKind::Global);
    let arrays = [a0, a1];
    let mut values = Vec::new();
    let mut mem_ids = Vec::new();
    let mut store_ids = Vec::new();
    let mut load_ids = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            GenOp::Load {
                array,
                offset,
                stride,
                gran_pow,
                hit,
                pref,
            } => {
                let gran = 1u8 << gran_pow; // 1, 2 or 4 bytes
                let (id, v) = b.load(
                    format!("ld{i}"),
                    arrays[*array],
                    (*offset as i64) * gran as i64,
                    (*stride as i64) * gran as i64,
                    gran,
                );
                b.set_profile(
                    id,
                    MemProfile::with_local_ratio(*hit as f64 / 10.0, *pref as usize, 0.7, 4),
                );
                values.push(v);
                mem_ids.push(id);
                load_ids.push(id);
            }
            GenOp::Compute {
                opcode,
                src_a,
                src_b,
                carried,
            } => {
                let table = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::And,
                    Opcode::FAdd,
                    Opcode::FMul,
                ];
                let mut srcs = Vec::new();
                if !values.is_empty() {
                    srcs.push(values[*src_a as usize % values.len()].into());
                    if let Some(sb) = src_b {
                        srcs.push(values[*sb as usize % values.len()].into());
                    }
                }
                let (_, v) = if *carried {
                    b.int_op_carried(format!("c{i}"), table[*opcode as usize % 6], &srcs, 1)
                } else {
                    b.int_op(format!("c{i}"), table[*opcode as usize % 6], &srcs)
                };
                values.push(v);
            }
            GenOp::Store {
                array,
                offset,
                stride,
                gran_pow,
                value,
            } => {
                if values.is_empty() {
                    continue; // nothing to store yet
                }
                let gran = 1u8 << gran_pow;
                let v = values[*value as usize % values.len()];
                let (id, _) = b.store(
                    format!("st{i}"),
                    arrays[*array],
                    2048 + (*offset as i64) * gran as i64,
                    (*stride as i64) * gran as i64,
                    gran,
                    v,
                );
                mem_ids.push(id);
                store_ids.push(id);
            }
        }
    }
    if values.is_empty() {
        let (_, v) = b.int_op("seed", Opcode::Add, &[]);
        values.push(v);
    }
    // conservative chains: forward memory edges between chosen pairs
    for &(x, y) in chain_pairs {
        if mem_ids.len() >= 2 {
            let i = x as usize % mem_ids.len();
            let j = y as usize % mem_ids.len();
            if i != j {
                let (from, to) = (mem_ids[i.min(j)], mem_ids[i.max(j)]);
                b.mem_dep(from, to, DepKind::MemOut, 0);
            }
        }
    }
    // optional memory recurrence
    if recur {
        if let (Some(&st), Some(&ld)) = (store_ids.first(), load_ids.first()) {
            b.mem_dep(st, ld, DepKind::MemFlow, 1);
        }
    }
    b.finish(64.0)
}

/// Any generated kernel schedules legally under every policy.
#[test]
fn schedules_are_always_legal() {
    let mut rng = StdRng::seed_from_u64(0x5ced_0001);
    for case in 0..24 {
        let ops = gen_ops(&mut rng, 1, 10);
        let chains = gen_chain_pairs(&mut rng, 4);
        let recur = rng.random::<bool>();
        let policy = ClusterPolicy::ALL[rng.random_range(0..4usize)];
        let kernel = build_kernel(&ops, &chains, recur);
        let machine = MachineConfig::word_interleaved_4();
        let s = schedule_kernel(&kernel, &machine, ScheduleOptions::new(policy))
            .expect("generated kernels are schedulable");
        let errs = s.verify(&kernel, &machine);
        assert!(
            errs.is_empty(),
            "case {case}: violations: {errs:?}\nkernel: {kernel}"
        );
        assert!(s.ii >= s.mii, "case {case}");
        // chain co-location under the chain-respecting policies
        if matches!(
            policy,
            ClusterPolicy::BuildChains | ClusterPolicy::PreBuildChains
        ) {
            let mc = MemChains::build(&kernel);
            for (_, members) in mc.iter() {
                let c0 = s.op(members[0]).cluster;
                for &m in members {
                    assert_eq!(s.op(m).cluster, c0, "case {case}: chain split");
                }
            }
        }
    }
}

/// Unrolling preserves dynamic work and makes every eligible stride a
/// multiple of N×I at the OUF.
#[test]
fn unrolling_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5ced_0002);
    for case in 0..24 {
        let ops = gen_ops(&mut rng, 1, 8);
        let factor = rng.random_range(1..9u32);
        let kernel = build_kernel(&ops, &[], false);
        let machine = MachineConfig::word_interleaved_4();
        let u = unroll(&kernel, factor);
        assert_eq!(
            u.ops.len(),
            kernel.ops.len() * factor as usize,
            "case {case}"
        );
        assert!(
            (u.dynamic_ops() - kernel.dynamic_ops()).abs() < 1e-6,
            "case {case}"
        );
        // SSA preserved
        let mut seen = std::collections::HashSet::new();
        for op in &u.ops {
            if let Some(d) = op.dst {
                assert!(seen.insert(d), "case {case}: duplicate def");
            }
        }
        // OUF property
        let ouf = optimal_unroll_factor(&kernel, &machine);
        let at_ouf = unroll(&kernel, ouf);
        for op in at_ouf.mem_ops() {
            let m = op.mem.as_ref().unwrap();
            if let Some(stride) = m.stride {
                if m.granularity as usize <= machine.cache.interleave_bytes && m.hit_rate() > 0.0 {
                    assert_eq!(
                        stride % machine.ni_bytes(),
                        0,
                        "case {case}: op {} stride {} not aligned at OUF {}",
                        op.name,
                        stride,
                        ouf
                    );
                }
            }
        }
    }
}

/// Cache models conserve accesses and the interleaved cache never
/// replicates data outside Attraction Buffers.
#[test]
fn cache_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5ced_0003);
    for _case in 0..24 {
        let n = rng.random_range(1..200usize);
        let addrs: Vec<(u64, usize, bool)> = (0..n)
            .map(|_| {
                (
                    rng.random_range(0..4096u64),
                    rng.random_range(0..4usize),
                    rng.random::<bool>(),
                )
            })
            .collect();
        let machine = MachineConfig::word_interleaved_4();
        let mut cache = InterleavedCache::new(&machine);
        let mut now = 0;
        for &(addr, cluster, is_store) in &addrs {
            now += 3;
            let req = if is_store {
                AccessRequest::store(cluster, addr, 4, now)
            } else {
                AccessRequest::load(cluster, addr, 4, now)
            };
            let out = cache.access(req);
            assert!(out.ready_at >= now);
            // a local access classifies local iff the home matches
            let home = cache.home_cluster(addr);
            if out.class.is_local() && !out.combined {
                assert_eq!(home, cluster);
            }
        }
        let s = cache.stats();
        let sum: u64 = AccessClass::ALL.iter().map(|&c| s.count(c)).sum::<u64>() + s.combined();
        assert_eq!(sum, addrs.len() as u64);
    }
}

/// The coherent (multiVLIW) cache keeps the single-writer invariant.
#[test]
fn coherent_single_writer() {
    let mut rng = StdRng::seed_from_u64(0x5ced_0004);
    for _case in 0..24 {
        let n = rng.random_range(1..150usize);
        let addrs: Vec<(u64, usize, bool)> = (0..n)
            .map(|_| {
                (
                    rng.random_range(0..1024u64),
                    rng.random_range(0..4usize),
                    rng.random::<bool>(),
                )
            })
            .collect();
        let machine = MachineConfig::multi_vliw_4();
        let mut cache = CoherentCache::new(&machine);
        let mut now = 0;
        for &(addr, cluster, is_store) in &addrs {
            now += 3;
            let req = if is_store {
                AccessRequest::store(cluster, addr, 4, now)
            } else {
                AccessRequest::load(cluster, addr, 4, now)
            };
            let _ = cache.access(req);
            if is_store {
                assert_eq!(cache.copies_of(addr), 1, "store must leave one copy");
            } else {
                assert!(cache.copies_of(addr) >= 1);
            }
        }
    }
}
