//! Behavioral tests of the scheduling engine across crates: copies on
//! register buses, II growth under pressure, latency classes, pressure
//! estimates.

use interleaved_vliw::ir::{ArrayKind, DepKind, KernelBuilder, MemProfile, Opcode};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::sched::{max_live, schedule_kernel, ClusterPolicy, ScheduleOptions};

#[test]
fn forced_cross_cluster_flow_inserts_a_copy() {
    // two pinned memory ops in different clusters with a register flow
    // between them: the schedule must carry the value over a register bus
    let mut b = KernelBuilder::new("t");
    let a = b.array("a", 4096, ArrayKind::Global);
    let (ld, v) = b.load("ld", a, 0, 16, 4);
    let (_, w) = b.int_op("inc", Opcode::Add, &[v.into()]);
    let (st, _) = b.store("st", a, 2052, 16, 4, w); // home cluster 1
    b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
    b.set_profile(st, MemProfile::concentrated(1.0, 1, 4));
    let k = b.finish(64.0);
    let m = MachineConfig::word_interleaved_4();
    let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::NoChains)).unwrap();
    assert!(s.verify(&k, &m).is_empty());
    assert_eq!(s.op(ld).cluster, 0);
    assert_eq!(s.op(st).cluster, 1);
    // the value chain ld -> inc -> st crosses clusters at least once
    assert!(s.n_comms() >= 1, "a register-bus copy must exist");
    for c in &s.copies {
        assert!(c.bus < m.buses.reg_buses);
        assert_ne!(c.from, c.to);
    }
}

#[test]
fn mem_unit_pressure_raises_ii() {
    // 9 loads pinned to one cluster: one memory unit -> II >= 9
    let mut b = KernelBuilder::new("t");
    let a = b.array("a", 8192, ArrayKind::Global);
    for i in 0..9 {
        let (ld, _) = b.load(format!("ld{i}"), a, 16 * i, 16, 4);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
    }
    let k = b.finish(64.0);
    let m = MachineConfig::word_interleaved_4();
    let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::NoChains)).unwrap();
    assert!(
        s.ii >= 9,
        "II {} must serialize 9 loads on one MEM unit",
        s.ii
    );
    // the same loads unpinned spread over four units: II can reach ~3
    let free = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
    assert!(
        free.ii < s.ii,
        "free placement beats pinned: {} vs {}",
        free.ii,
        s.ii
    );
}

#[test]
fn recurrence_free_loads_keep_the_remote_miss_promise() {
    let mut b = KernelBuilder::new("t");
    let a = b.array("a", 4096, ArrayKind::Global);
    let (ld, v) = b.load("ld", a, 0, 4, 4);
    let _ = b.int_op("use", Opcode::Add, &[v.into()]);
    let k = b.finish(64.0);
    let m = MachineConfig::word_interleaved_4();
    let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
    assert_eq!(s.op(ld).assumed_latency, m.mem_latencies.remote_miss);
}

#[test]
fn recurrence_loads_get_reduced_and_the_ii_hits_the_target() {
    let mut b = KernelBuilder::new("t");
    let a = b.array("a", 4096, ArrayKind::Global);
    let (ld, v) = b.load("ld", a, 0, 4, 4);
    let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
    let (st, _) = b.store("st", a, 2048, 4, 4, w);
    b.mem_dep(st, ld, DepKind::MemFlow, 1);
    b.set_profile(ld, MemProfile::with_local_ratio(0.95, 0, 0.9, 4));
    let k = b.finish(64.0);
    let m = MachineConfig::word_interleaved_4();
    let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::PreBuildChains)).unwrap();
    // local-hit circuit: ld(1) + add(1) + st->ld(1) = 3 over distance 1
    assert_eq!(s.latencies.target_mii, 3);
    assert!(s.op(ld).assumed_latency <= m.mem_latencies.local_miss);
    assert_eq!(s.ii, 3, "the schedule achieves the recurrence-limited MII");
}

#[test]
fn stage_count_tracks_promised_latencies() {
    // the same dataflow with cheap vs expensive promises: the remote-miss
    // version must span more stages
    let build = |stride: i64| {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 8192, ArrayKind::Global);
        let (ld, v) = b.load("ld", a, 0, stride, 4);
        let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
        b.store("st", a, 4096, stride, 4, w);
        b.set_profile(ld, MemProfile::concentrated(1.0, 0, 4));
        b.finish(64.0)
    };
    let m = MachineConfig::word_interleaved_4();
    let k = build(16);
    let s = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
    // the load promises 15 cycles: consumer sits >= 15 later -> SC spans it
    let sc = s.stage_count();
    assert!(
        sc as u64 * s.ii as u64 > 15,
        "SC {sc} x II {} must cover the 15-cycle promise",
        s.ii
    );
}

#[test]
fn max_live_grows_with_promised_latency() {
    let m = MachineConfig::word_interleaved_4();
    // cheap chain
    let mut b = KernelBuilder::new("cheap");
    let (_, r) = b.int_op("a", Opcode::Add, &[]);
    let _ = b.int_op("b", Opcode::Sub, &[r.into()]);
    let cheap = b.finish(16.0);
    let s1 = schedule_kernel(&cheap, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
    // long-latency load feeding a consumer
    let mut b = KernelBuilder::new("hot");
    let a = b.array("a", 4096, ArrayKind::Global);
    let (_, v) = b.load("ld", a, 0, 4, 4);
    let _ = b.int_op("use", Opcode::Add, &[v.into()]);
    let hot = b.finish(16.0);
    let s2 = schedule_kernel(&hot, &m, ScheduleOptions::new(ClusterPolicy::Free)).unwrap();
    assert!(
        max_live(&hot, &s2) > max_live(&cheap, &s1),
        "15-cycle lifetimes need more registers"
    );
}

#[test]
fn schedules_are_deterministic() {
    let mut b = KernelBuilder::new("t");
    let a = b.array("a", 4096, ArrayKind::Global);
    let (_, v) = b.load("ld", a, 0, 4, 4);
    let (_, w) = b.int_op("add", Opcode::Add, &[v.into()]);
    b.store("st", a, 2048, 4, 4, w);
    let k = b.finish(64.0);
    let m = MachineConfig::word_interleaved_4();
    let s1 = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::BuildChains)).unwrap();
    let s2 = schedule_kernel(&k, &m, ScheduleOptions::new(ClusterPolicy::BuildChains)).unwrap();
    assert_eq!(s1, s2);
}
