//! Full-pipeline integration: synthesis → profiling → unrolling →
//! scheduling → simulation, across crates, plus figure-driver structure.

use interleaved_vliw::experiments::{
    fig4, fig7, run_benchmark, tables, ExperimentContext, RunConfig,
};
use interleaved_vliw::machine::MachineConfig;
use interleaved_vliw::workloads::{suite, SUITE_NAMES};

fn tiny_ctx(benches: &[&str]) -> ExperimentContext {
    let mut ctx = ExperimentContext::quick();
    ctx.benchmarks = benches.iter().map(|s| s.to_string()).collect();
    ctx.sim.iteration_cap = 48;
    ctx.sim.warmup_iterations = 48;
    ctx.profile.iteration_cap = 48;
    ctx
}

#[test]
fn suite_matches_table1_identity() {
    assert_eq!(suite().len(), SUITE_NAMES.len());
    let ctx = tiny_ctx(&["gsmdec", "mpeg2dec"]);
    let t1 = tables::table1(&ctx);
    // the synthesized dominant-granularity share lands near the paper's
    let m = t1.measured_share("gsmdec").unwrap();
    assert!(m > 0.7, "gsmdec 2-byte share {m}");
    let m = t1.measured_share("mpeg2dec").unwrap();
    assert!(m > 0.2, "mpeg2dec 8-byte share {m}");
}

#[test]
fn table2_mentions_every_parameter() {
    let ctx = ExperimentContext::full();
    let s = tables::table2(&ctx).to_string();
    for needle in [
        "number of clusters",
        "8 KB total",
        "interleaving factor",
        "4 bytes",
        "1/2 core frequency",
    ] {
        assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
    }
}

#[test]
fn benchmark_run_produces_consistent_aggregates() {
    let ctx = tiny_ctx(&["g721enc"]);
    let model = &ctx.models()[0];
    let run = run_benchmark(model, &RunConfig::ipbc().with_buffers(), &ctx);
    assert_eq!(run.loops.len(), model.loops.len());
    assert!(run.total_cycles() > 0.0);
    assert!((run.total_cycles() - run.compute_cycles() - run.stall_cycles()).abs() < 1e-6);
    // access mix covers every memory op of every simulated iteration
    let mix = run.access_mix();
    assert!(mix.iter().all(|&x| x >= 0.0));
    assert!(mix.iter().sum::<f64>() > 0.0);
    // the stall breakdown never exceeds total stall
    assert!(run.stall_breakdown().total() <= run.stall_cycles() + 1e-6);
    let n = ctx.machine.n_clusters();
    let wb = run.workload_balance(n);
    assert!((1.0 / n as f64..=1.0).contains(&wb), "wb = {wb}");
}

#[test]
fn fig4_rows_are_normalized_distributions() {
    let ctx = tiny_ctx(&["gsmenc"]);
    let f = fig4::fig4(&ctx);
    assert_eq!(f.rows.len(), 1);
    for bar in &f.rows[0].bars {
        let sum: f64 = bar.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "bar sums to {sum}");
        assert!(bar.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
    // rendering works and includes the benchmark
    let text = f.to_string();
    assert!(text.contains("gsmenc"));
    assert!(f.table().to_csv().lines().count() >= 6);
}

#[test]
fn fig7_balance_within_bounds() {
    let ctx = tiny_ctx(&["pegwitenc"]);
    let f = fig7::fig7(&ctx);
    for r in &f.rows {
        for &wb in &r.wb {
            assert!((0.25..=1.0).contains(&wb), "{}: wb {wb}", r.bench);
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let ctx = tiny_ctx(&["jpegdec"]);
    let model = &ctx.models()[0];
    let a = run_benchmark(model, &RunConfig::ipbc(), &ctx);
    let b = run_benchmark(model, &RunConfig::ipbc(), &ctx);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.access_mix(), b.access_mix());
}

#[test]
fn machine_variants_validate() {
    for m in [
        MachineConfig::word_interleaved_4(),
        MachineConfig::word_interleaved_4().with_attraction_buffers(16, 2),
        MachineConfig::multi_vliw_4(),
        MachineConfig::unified_4(1),
        MachineConfig::unified_4(5),
        MachineConfig::word_interleaved(2),
    ] {
        m.validate().expect("preset machines are valid");
    }
}
